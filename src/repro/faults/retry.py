"""HMC-style retry buffer for one serial-link direction.

The transmitter keeps every packet in the retry buffer until it is
acknowledged.  A CRC failure or drop at the receiver triggers a NAK; the
transmitter replays the packet from the buffer after ``retry_latency``
cycles (NAK round-trip + replay start).  After ``max_retries`` consecutive
failed replays of the same packet the link retrains - a long SerDes
re-initialization (``retrain_latency``) - and the final replay succeeds.

The link model is arithmetic (busy-until, no events), so the retry buffer
resolves each packet's whole error episode at ``send`` time: it draws from
the injector until the packet goes through, tallies the error/replay/retrain
counters, and reports how many retransmissions the link direction must pay
for.  Delivery is guaranteed (the HMC transaction layer is lossless); faults
cost cycles and wire flits, never data.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.faults.config import LinkFaultConfig
from repro.faults.injector import ERROR_DROP, LinkFaultInjector


class RetryBuffer:
    """Per-direction retry state: error counters plus the replay policy."""

    __slots__ = (
        "config",
        "injector",
        "active",
        "crc_errors",
        "drops",
        "replays",
        "retrains",
        "replayed_flits",
        "max_episode_replays",
    )

    def __init__(self, config: LinkFaultConfig, injector: LinkFaultInjector) -> None:
        self.config = config
        self.injector = injector
        #: a zero-probability buffer can never fault; the link checks this
        #: flag at the guard so an inert buffer costs one attribute test
        self.active = config.enabled
        self.crc_errors = 0
        self.drops = 0
        self.replays = 0
        self.retrains = 0
        self.replayed_flits = 0
        self.max_episode_replays = 0

    def transmit(self, nbytes: int, flits: int) -> Tuple[int, bool]:
        """Resolve one packet's transmission episode.

        Returns ``(replays, retrained)``: how many retransmissions the
        direction must serialize beyond the first attempt, and whether a
        retraining penalty applies.  Each failed attempt costs one replay;
        the attempt after a retrain always succeeds.
        """
        replays = 0
        retrained = False
        while True:
            kind = self.injector.packet_error(nbytes)
            if kind is None:
                break
            if kind == ERROR_DROP:
                self.drops += 1
            else:
                self.crc_errors += 1
            replays += 1
            if replays >= self.config.max_retries:
                retrained = True
                self.retrains += 1
                break
        if replays:
            self.replays += replays
            self.replayed_flits += replays * flits
            if replays > self.max_episode_replays:
                self.max_episode_replays = replays
        return replays, retrained

    def reset_counters(self) -> None:
        """Warmup boundary: zero the measurement counters (the injector's
        RNG stream is simulation state and is preserved)."""
        self.crc_errors = 0
        self.drops = 0
        self.replays = 0
        self.retrains = 0
        self.replayed_flits = 0
        self.max_episode_replays = 0

    def counters(self) -> Dict[str, int]:
        """Flat counter snapshot (feeds reports and trace summaries)."""
        return {
            "crc_errors": self.crc_errors,
            "drops": self.drops,
            "replays": self.replays,
            "retrains": self.retrains,
            "replayed_flits": self.replayed_flits,
            "max_episode_replays": self.max_episode_replays,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RetryBuffer replays={self.replays} retrains={self.retrains} "
            f"crc={self.crc_errors} drops={self.drops}>"
        )
