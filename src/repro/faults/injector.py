"""Deterministic per-direction fault source for the serial links.

Each :class:`LinkFaultInjector` owns an independent ``random.Random`` stream
whose seed is derived from ``(config.seed, link_id, direction)`` through
SHA-256 - *not* Python's built-in ``hash``, which is salted per process for
strings and would make campaign workers non-reproducible.  Because the
simulation engine fires events in a fully deterministic order, the sequence
of draws (one or two per transmitted packet) is identical across runs with
the same seed, on any machine and under any multiprocessing start method.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

from repro.faults.config import LinkFaultConfig

#: outcome tags returned by :meth:`LinkFaultInjector.packet_error`
ERROR_DROP = "drop"
ERROR_CRC = "crc"


def derive_seed(base_seed: int, link_id: int, direction: str) -> int:
    """Stable 64-bit stream seed for one link direction."""
    text = f"{base_seed}:{link_id}:{direction}"
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class LinkFaultInjector:
    """Decides, packet by packet, whether a transmission attempt fails."""

    __slots__ = ("config", "link_id", "direction", "_rng")

    def __init__(self, config: LinkFaultConfig, link_id: int, direction: str) -> None:
        self.config = config
        self.link_id = link_id
        self.direction = direction
        self._rng = random.Random(derive_seed(config.seed, link_id, direction))

    def packet_error(self, nbytes: int) -> Optional[str]:
        """One transmission attempt of an ``nbytes`` packet: returns
        :data:`ERROR_DROP`, :data:`ERROR_CRC`, or None (delivered clean)."""
        cfg = self.config
        if cfg.drop_prob and self._rng.random() < cfg.drop_prob:
            return ERROR_DROP
        if cfg.ber:
            p_corrupt = 1.0 - (1.0 - cfg.ber) ** (8 * nbytes)
            if self._rng.random() < p_corrupt:
                return ERROR_CRC
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LinkFaultInjector link{self.link_id}.{self.direction} "
            f"ber={self.config.ber} drop={self.config.drop_prob}>"
        )
