"""Link fault injection: seeded, deterministic degradation of the serial links.

The CAMPS paper models the HMC's external links as ideal; the HMC 2.1
transaction layer they abstract specifies CRC-protected flits, a per-link
retry buffer, and a link-retraining escape hatch.  This package supplies
that error behavior as an opt-in layer on :class:`repro.interconnect.link.
LinkDirection`: a :class:`LinkFaultConfig` (bit-error rate, packet-drop
probability, retry/retrain latencies) rides on :class:`repro.hmc.config.
HMCConfig` as the ``faults`` field, and when enabled each link direction
gets a :class:`LinkFaultInjector` (independent seeded RNG stream) plus a
:class:`RetryBuffer` that replays NAK'd packets with bounded retries.

Usage::

    from repro.faults import LinkFaultConfig
    from repro.hmc.config import HMCConfig
    from repro.system import run_system

    hmc = HMCConfig(faults=LinkFaultConfig(ber=1e-6, seed=7))
    result = run_system(traces, scheme="camps-mod", hmc=hmc)
    print(result.extra["link_faults"])   # replays, retrains, crc_errors, ...

Determinism: injector streams are derived via SHA-256 from
``(seed, link_id, direction)`` and consumed in engine event order, so two
runs with the same seed report identical retry counts and results.
"""

from repro.faults.config import LinkFaultConfig
from repro.faults.injector import ERROR_CRC, ERROR_DROP, LinkFaultInjector, derive_seed
from repro.faults.retry import RetryBuffer

__all__ = [
    "LinkFaultConfig",
    "LinkFaultInjector",
    "RetryBuffer",
    "derive_seed",
    "ERROR_CRC",
    "ERROR_DROP",
]
