"""Event-driven simulation engine.

Time is an integer number of CPU cycles (3 GHz in the paper's Table I
configuration).  Events fire in ``(time, priority, seq)`` order; ``seq`` is a
monotonically increasing tie-breaker so the simulation is fully deterministic
regardless of heap internals.

The engine intentionally has no notion of "processes" or coroutines: every
component is a plain object that schedules callbacks.  Profiling showed a
callback-based heap loop to be roughly 3x faster in CPython than a
generator-based process model for this workload mix, and the hot loop below
avoids attribute lookups accordingly.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """Handle to a scheduled callback.

    The handle supports O(1) cancellation: cancelled events stay in the heap
    but are skipped when popped.  This matters for timeout-style events that
    are almost always cancelled before firing.

    *Weak* events (periodic background work such as DRAM refresh) do not keep
    the simulation alive: :meth:`Engine.run` stops once only weak events
    remain pending.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "fn",
        "args",
        "cancelled",
        "fired",
        "weak",
        "_engine",
    )

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        weak: bool = False,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.weak = weak
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an event
        that already fired is a no-op (it is no longer in the heap)."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self._engine is not None:
                self._engine._live -= 1
                if not self.weak:
                    self._engine._strong -= 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} {state} fn={self.fn!r}>"


class Engine:
    """Deterministic discrete-event simulation engine.

    >>> eng = Engine()
    >>> order = []
    >>> _ = eng.schedule(5, order.append, "b")
    >>> _ = eng.schedule(1, order.append, "a")
    >>> eng.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._strong: int = 0  # pending non-weak, non-cancelled events
        self._live: int = 0  # pending non-cancelled events (weak included)
        self._events_fired: int = 0
        self._running = False
        #: attached observability tracer (repro.obs.Tracer) or None; per-event
        #: span recording only happens when the tracer asks for engine_spans
        self.tracer = None
        #: attached forward-progress watchdog (repro.sim.integrity.Watchdog)
        #: or None; polled every watchdog.interval fired events
        self.watchdog = None
        #: cumulative wall-clock time spent inside run() (seconds)
        self.wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        weak: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative.  ``priority`` breaks same-cycle ties
        (lower fires first); components use it to guarantee e.g. that bank
        completions are processed before new arrivals in the same cycle.
        ``weak`` events do not keep :meth:`run` alive on their own.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(
            self.now + delay, fn, *args, priority=priority, weak=weak
        )

    def schedule_at(
        self,
        time: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        weak: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq += 1
        ev = Event(int(time), priority, self._seq, fn, args, weak=weak, engine=self)
        heapq.heappush(self._heap, ev)
        self._live += 1
        if not weak:
            self._strong += 1
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` cycles pass, or ``max_events``
        events fire.  Returns the number of events executed by this call.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        # Hoisted per-run: when no tracer wants spans, the loop pays one
        # falsy check per event and nothing else.
        tracer = self.tracer
        spans = tracer is not None and tracer.engine_spans
        # Same treatment for the watchdog: 0 disables the whole branch.
        watchdog = self.watchdog
        wd_interval = watchdog.interval if watchdog is not None else 0
        wd_count = 0
        t0 = perf_counter()
        try:
            while heap:
                if until is None and self._strong == 0:
                    break  # only weak (background) events remain
                ev = heap[0]
                if until is not None and ev.time > until:
                    self.now = until
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                if max_events is not None and fired >= max_events:
                    heapq.heappush(heap, ev)
                    break
                self.now = ev.time
                self._live -= 1
                if not ev.weak:
                    self._strong -= 1
                ev.fired = True
                if spans:
                    tracer.engine_fire(ev.time, ev.fn)
                # Counted before the call so a raising callback still shows
                # up in events_fired (crash reports rely on the count).
                fired += 1
                ev.fn(*ev.args)
                if wd_interval:
                    wd_count += 1
                    if wd_count >= wd_interval:
                        wd_count = 0
                        watchdog.poll(self.now)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
            self.wall_seconds += perf_counter() - t0
            # Inside the finally so a watchdog/callback exception still
            # leaves an accurate lifetime count for the crash report.
            self._events_fired += fired
        return fired

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False if none remain."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap.

        Maintained as a live counter (push / cancel / fire), not a heap
        scan: components poll this property while the heap holds thousands
        of events, and the O(n) sweep showed up in profiles.
        """
        return self._live

    @property
    def events_fired(self) -> int:
        """Total events executed over the engine's lifetime."""
        return self._events_fired

    @property
    def events_per_sec(self) -> float:
        """Lifetime engine throughput: events fired per wall-clock second
        spent inside :meth:`run` (0.0 before the first run)."""
        return self._events_fired / self.wall_seconds if self.wall_seconds else 0.0

    def peek_time(self) -> Optional[int]:
        """Cycle of the next live event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now} pending={len(self._heap)}>"
