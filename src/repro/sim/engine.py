"""Event-driven simulation engine.

Time is an integer number of CPU cycles (3 GHz in the paper's Table I
configuration).  Events fire in ``(time, priority, seq)`` order; ``seq`` is a
monotonically increasing tie-breaker so the simulation is fully deterministic
regardless of heap internals.

The engine intentionally has no notion of "processes" or coroutines: every
component is a plain object that schedules callbacks.  Profiling showed a
callback-based heap loop to be roughly 3x faster in CPython than a
generator-based process model for this workload mix, and the hot loop below
avoids attribute lookups accordingly.

Two hot-path choices are worth naming because they are invisible in the API:

* Heap entries are ``(time, priority, seq, event)`` tuples, not Event
  objects.  Tuple ordering is resolved in C; an object heap would route
  every sift comparison through ``Event.__lt__`` (the single hottest
  function before the change).
* Fired and cancelled-and-popped events are recycled through a per-engine
  freelist (weak refresh events included), so steady state allocates no
  Event objects at all.  The price is that an :class:`Event` handle is
  **single-use**: once it has fired, or once a cancelled handle's turn in
  the heap has passed, the object may be reissued for an unrelated
  callback, and a retained reference goes stale.  Cancel an event only
  while it is still pending - the one supported pattern is
  cancel-then-immediately-reschedule (see ``VaultController._arm_wake``).
* Fire-and-forget callbacks (the vast majority: link deliveries, bank
  completions, core wakeups) go through :meth:`Engine.call_at`, which heaps
  a bare ``(time, priority, seq, fn, args)`` tuple with **no Event object
  at all** - nothing to pool, reset, or recycle.  Such entries cannot be
  cancelled; ``weak=True`` appends a sixth slot and makes the entry
  background-only (it does not keep :meth:`run` alive - the telemetry epoch
  tick uses this).  Use :meth:`Engine.schedule` / :meth:`Engine.schedule_at`
  when a handle is needed.
"""

from __future__ import annotations

import gc
import heapq
from time import perf_counter
from typing import Any, Callable, Iterator, List, Optional, Tuple


class Event:
    """Handle to a scheduled callback.

    The handle supports O(1) cancellation: cancelled events stay in the heap
    but are skipped when popped.  This matters for timeout-style events that
    are almost always cancelled before firing.

    *Weak* events (periodic background work such as DRAM refresh) do not keep
    the simulation alive: :meth:`Engine.run` stops once only weak events
    remain pending.

    Handles are pooled (see the module docstring): drop the reference once
    the event has fired or been cancelled.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "fn",
        "args",
        "cancelled",
        "fired",
        "weak",
        "_engine",
    )

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        weak: bool = False,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.weak = weak
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an event
        that already fired is a no-op (it is no longer in the heap)."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self._engine is not None:
                if self.weak:
                    self._engine._weak_live -= 1
                else:
                    self._engine._strong -= 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} {state} fn={self.fn!r}>"


#: type of one heap entry: ``(time, priority, seq, event)`` for handled
#: events, ``(time, priority, seq, fn, args)`` for handle-free call_at()
#: entries, or ``(time, priority, seq, fn, args, True)`` for weak handle-free
#: entries (distinguished by length).  Slots past ``seq`` never participate
#: in the tuple comparison because ``seq`` (slot 2) is unique.
_HeapEntry = Tuple[Any, ...]


class Engine:
    """Deterministic discrete-event simulation engine.

    >>> eng = Engine()
    >>> order = []
    >>> _ = eng.schedule(5, order.append, "b")
    >>> _ = eng.schedule(1, order.append, "a")
    >>> eng.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        # Pending non-cancelled events, split by strength so the hot paths
        # touch exactly one counter (``pending`` reports the sum).
        self._strong: int = 0
        self._weak_live: int = 0
        self._events_fired: int = 0
        self._running = False
        #: freelist of recycled Event objects (fired, or cancelled and
        #: popped); both schedule paths - strong and weak - draw from it
        self._pool: List[Event] = []
        #: attached observability tracer (repro.obs.Tracer) or None; per-event
        #: span recording only happens when the tracer asks for engine_spans
        self.tracer = None
        #: attached forward-progress watchdog (repro.sim.integrity.Watchdog)
        #: or None; polled every watchdog.interval fired events
        self.watchdog = None
        #: cumulative wall-clock time spent inside run() (seconds)
        self.wall_seconds: float = 0.0
        #: idle cycles skipped by the time-warp fast path: whenever the next
        #: cohort is more than one cycle ahead, the clock jumps straight to
        #: it and the span in between is tallied here.  Purely diagnostic -
        #: the engine has always jumped (it is event-driven); the counter
        #: makes the warped spans visible to benches and the watchdog tests.
        self.idle_cycles_skipped: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        weak: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative.  ``priority`` breaks same-cycle ties
        (lower fires first); components use it to guarantee e.g. that bank
        completions are processed before new arrivals in the same cycle.
        ``weak`` events do not keep :meth:`run` alive on their own.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = int(self.now + delay)
        seq = self._seq + 1
        self._seq = seq
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
            ev.fired = False
            ev.weak = weak
        else:
            ev = Event(time, priority, seq, fn, args, weak=weak, engine=self)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        if weak:
            self._weak_live += 1
        else:
            self._strong += 1
        return ev

    def schedule_at(
        self,
        time: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        weak: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        time = int(time)
        seq = self._seq + 1
        self._seq = seq
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
            ev.fired = False
            ev.weak = weak
        else:
            ev = Event(time, priority, seq, fn, args, weak=weak, engine=self)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        if weak:
            self._weak_live += 1
        else:
            self._strong += 1
        return ev

    def call_at(
        self,
        time: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        weak: bool = False,
    ) -> None:
        """Schedule ``fn(*args)`` at absolute cycle ``time``, handle-free.

        The fire-and-forget fast path: no :class:`Event` is created (the
        heap holds a bare ``(time, priority, seq, fn, args)`` tuple), so the
        call cannot be cancelled.  ``weak=True`` marks the entry background
        work that does not keep :meth:`run` alive (the heap tuple grows a
        sixth slot); the telemetry epoch tick uses this to sample without
        ever extending the simulation.  Ordering is identical to
        :meth:`schedule_at` with the same arguments - both draw ``seq`` from
        the same counter.  ``time`` must already be an integer cycle: unlike
        the schedule paths, no ``int()`` coercion is applied.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        seq = self._seq + 1
        self._seq = seq
        if weak:
            heapq.heappush(self._heap, (time, priority, seq, fn, args, True))
            self._weak_live += 1
        else:
            heapq.heappush(self._heap, (time, priority, seq, fn, args))
            self._strong += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the heap drains, ``until`` cycles pass, or ``max_events``
        events fire.  Returns the number of events executed by this call.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        pool = self._pool
        heappop = heapq.heappop
        # Hoisted per-run: when no tracer wants spans, the loop pays one
        # falsy check per event and nothing else.
        tracer = self.tracer
        spans = tracer is not None and tracer.engine_spans
        # Same treatment for the watchdog: 0 disables the whole branch.
        watchdog = self.watchdog
        wd_interval = watchdog.interval if watchdog is not None else 0
        wd_count = 0
        t0 = perf_counter()
        # Generational GC only burns cycles here: the event/request pools
        # remove the allocation churn that would trigger it, and the graphs
        # the simulation does build (deques, tuples) die at run end anyway.
        # State-restoring, so a run() nested via another engine stays correct.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is None and max_events is None and not spans and not wd_interval:
                # Cohort-dispatch fast loop for the dominant configuration
                # (plain run() with no limit, spans, or watchdog): identical
                # fire order to the general loop below - entries still pop
                # in exact (time, priority, seq) order - but structured as
                # one pass per *cohort*, the maximal run of entries sharing
                # ``(time, priority)``.  The clock is written and the warp
                # span accounted once per cohort head instead of once per
                # event, and the inner drain continues on a cheap heap-head
                # peek.  A callback that schedules an earlier-sorting entry
                # (same cycle, lower priority) makes that entry the new heap
                # head, the peek mismatches, and the outer loop re-pops - so
                # cohort membership is decided by the live heap, never by a
                # stale snapshot.
                # ``strong`` mirrors self._strong in a local; it is written
                # back before every callback (which may schedule) and
                # re-read after, so the attribute stays authoritative.
                strong = self._strong
                now = self.now
                warped = 0
                while heap and strong:
                    entry = heappop(heap)
                    t = entry[0]
                    if t != now:
                        # Time-warp: jump straight over the idle span.
                        if t - now > 1:
                            warped += t - now - 1
                        self.now = now = t
                    p = entry[1]
                    while True:
                        n = len(entry)
                        if n != 4:
                            # handle-free call_at() entry: nothing to cancel,
                            # nothing to recycle (weak entries carry slot 5)
                            if n == 5:
                                self._strong = strong = strong - 1
                            else:
                                self._weak_live -= 1
                            fired += 1
                            entry[3](*entry[4])
                            strong = self._strong
                        else:
                            ev = entry[3]
                            if ev.cancelled:
                                ev.fn = None
                                ev.args = ()
                                pool.append(ev)
                                # a cancelled pop consumes nothing: keep
                                # draining the cohort without a strong check
                                if heap:
                                    head = heap[0]
                                    if head[0] == t and head[1] == p:
                                        entry = heappop(heap)
                                        continue
                                break
                            if ev.weak:
                                self._weak_live -= 1
                            else:
                                self._strong = strong = strong - 1
                            ev.fired = True
                            fired += 1
                            ev.fn(*ev.args)
                            strong = self._strong
                            ev.fn = None
                            ev.args = ()
                            pool.append(ev)
                        if not strong or not heap:
                            break
                        head = heap[0]
                        if head[0] != t or head[1] != p:
                            break
                        entry = heappop(heap)
                self.idle_cycles_skipped += warped
                return fired
            while heap:
                if until is None and self._strong == 0:
                    break  # only weak (background) events remain
                entry = heap[0]
                time = entry[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heappop(heap)
                n = len(entry)
                if n != 4:
                    # handle-free call_at() entry (see the fast loop above)
                    if max_events is not None and fired >= max_events:
                        heapq.heappush(heap, entry)
                        break
                    if time - self.now > 1:  # time-warp over the idle span
                        self.idle_cycles_skipped += time - self.now - 1
                    self.now = time
                    if n == 5:
                        self._strong -= 1
                    else:
                        self._weak_live -= 1
                    fn = entry[3]
                    if spans:
                        tracer.engine_fire(time, fn)
                    fired += 1
                    fn(*entry[4])
                    if wd_interval:
                        wd_count += 1
                        if wd_count >= wd_interval:
                            wd_count = 0
                            watchdog.poll(self.now)
                    continue
                ev = entry[3]
                if ev.cancelled:
                    ev.fn = None
                    ev.args = ()
                    pool.append(ev)
                    continue
                if max_events is not None and fired >= max_events:
                    heapq.heappush(heap, entry)
                    break
                if time - self.now > 1:  # time-warp over the idle span
                    self.idle_cycles_skipped += time - self.now - 1
                self.now = time
                if ev.weak:
                    self._weak_live -= 1
                else:
                    self._strong -= 1
                ev.fired = True
                fn = ev.fn
                args = ev.args
                if spans:
                    tracer.engine_fire(time, fn)
                # Counted before the call so a raising callback still shows
                # up in events_fired (crash reports rely on the count).
                fired += 1
                fn(*args)
                # Recycle only after the callback returns: a raising callback
                # leaves its event out of the pool, preserving it for crash
                # reports.  ``fired`` stays True until the handle is reissued,
                # so a late cancel() on the stale handle is still a no-op.
                ev.fn = None
                ev.args = ()
                pool.append(ev)
                if wd_interval:
                    wd_count += 1
                    if wd_count >= wd_interval:
                        wd_count = 0
                        watchdog.poll(self.now)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
            self.wall_seconds += perf_counter() - t0
            # Inside the finally so a watchdog/callback exception still
            # leaves an accurate lifetime count for the crash report.
            self._events_fired += fired
        return fired

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False if none remain."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap.

        Maintained as a live counter (push / cancel / fire), not a heap
        scan: components poll this property while the heap holds thousands
        of events, and the O(n) sweep showed up in profiles.
        """
        return self._strong + self._weak_live

    @property
    def pool_size(self) -> int:
        """Recycled Event objects currently waiting for reuse."""
        return len(self._pool)

    @property
    def events_fired(self) -> int:
        """Total events executed over the engine's lifetime."""
        return self._events_fired

    @property
    def events_per_sec(self) -> float:
        """Lifetime engine throughput: events fired per wall-clock second
        spent inside :meth:`run` (0.0 before the first run)."""
        return self._events_fired / self.wall_seconds if self.wall_seconds else 0.0

    def peek_time(self) -> Optional[int]:
        """Cycle of the next live event, or None when drained."""
        heap = self._heap
        pool = self._pool
        while heap:
            head = heap[0]
            if len(head) != 4 or not head[3].cancelled:
                return head[0]
            ev = heapq.heappop(heap)[3]
            ev.fn = None
            ev.args = ()
            pool.append(ev)
        return None

    def live_events(self) -> Iterator[Event]:
        """Snapshot of pending (non-cancelled) events, in no particular
        order.  Diagnostic use only (integrity layer, crash reports):
        handle-free call_at() entries are surfaced as transient Event views
        that are not connected to the heap (cancelling one has no effect)."""
        for entry in self._heap:
            if len(entry) != 4:
                yield Event(
                    entry[0], entry[1], entry[2], entry[3], entry[4],
                    weak=len(entry) == 6,
                )
            elif not entry[3].cancelled:
                yield entry[3]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now} pending={len(self._heap)}>"
