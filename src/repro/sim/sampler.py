"""Periodic state sampling for observability.

A :class:`Sampler` fires a *weak* engine event every ``interval`` cycles and
feeds the values returned by registered probe callables into histograms -
queue depths, buffer occupancy, outstanding request counts.  Weak events do
not keep the simulation alive, so a sampler never delays termination.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Engine
from repro.sim.stats import Histogram

Probe = Callable[[], float]


class Sampler:
    """Samples registered probes on a fixed period."""

    def __init__(self, engine: Engine, interval: int = 1000) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.engine = engine
        self.interval = interval
        self._probes: List[Tuple[str, Probe, Histogram]] = []
        self.samples_taken = 0
        self._armed = False

    def probe(self, name: str, fn: Probe, nbins: int = 32, bin_width: int = 2) -> Histogram:
        """Register a probe; returns the histogram its samples feed.

        Names must be unique (matching :meth:`Timeline.probe`): a duplicate
        would silently shadow the first probe's histogram in
        :meth:`histograms`, so it raises instead.
        """
        if any(name == existing for existing, _, _ in self._probes):
            raise ValueError(f"duplicate probe {name!r}")
        hist = Histogram(name, nbins=nbins, bin_width=bin_width)
        self._probes.append((name, fn, hist))
        return hist

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if not self._armed:
            self._armed = True
            self.engine.schedule(self.interval, self._tick, weak=True)

    def _tick(self) -> None:
        for _, fn, hist in self._probes:
            hist.add(fn())
        self.samples_taken += 1
        self.engine.schedule(self.interval, self._tick, weak=True)

    def histograms(self) -> Dict[str, Histogram]:
        return {name: hist for name, _, hist in self._probes}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Sampler every={self.interval} n={self.samples_taken}>"
