"""Statistics primitives shared by all simulated components.

Counters are plain attribute-backed integers (O(1) increments in the hot
path); histograms accumulate into fixed-size NumPy arrays so that millions of
samples cost one array index each.  A :class:`StatGroup` is a lightweight
named namespace that can be dumped to a flat dict for reporting.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

Number = Union[int, float]


class Counter:
    """A named monotonic (by convention) counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Fixed-bin histogram with overflow bin and exact running moments.

    ``bin_width`` buckets samples as ``min(sample // bin_width, nbins - 1)``;
    the last bin therefore collects overflow.  Mean/variance are tracked
    exactly (Welford) regardless of binning.
    """

    __slots__ = (
        "name", "bin_width", "nbins", "_counts", "_n", "_mean", "_m2",
        "_min", "_max", "_overflow",
    )

    def __init__(self, name: str, nbins: int = 64, bin_width: int = 16) -> None:
        if nbins < 1 or bin_width < 1:
            raise ValueError("nbins and bin_width must be >= 1")
        self.name = name
        self.bin_width = bin_width
        self.nbins = nbins
        # a plain list: incrementing one NumPy array element boxes a scalar
        # per sample, which dominated Histogram.add in the hot-loop profile
        self._counts: List[int] = [0] * nbins
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        # samples clamped into the last bin from beyond the binned range;
        # percentile() uses this to stop under-reporting high quantiles
        self._overflow = 0

    @property
    def counts(self) -> np.ndarray:
        """Bin counts as a NumPy array (a copy; accumulate via :meth:`add`)."""
        return np.asarray(self._counts, dtype=np.int64)

    def add(self, sample: Number) -> None:
        idx = int(sample) // self.bin_width
        nbins = self.nbins
        if idx >= nbins:
            idx = nbins - 1
            self._overflow += 1
        elif idx < 0:
            idx = 0
        self._counts[idx] += 1
        self._n += 1
        delta = sample - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (sample - self._mean)
        if self._min is None or sample < self._min:
            self._min = float(sample)
        if self._max is None or sample > self._max:
            self._max = float(sample)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self._n if self._n else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def overflow(self) -> int:
        """Samples clamped into the last bin from beyond the binned range."""
        return self._overflow

    def percentile(self, q: float) -> float:
        """Approximate percentile from bin midpoints (q in [0, 100]).

        The last bin holds both genuine last-interval samples and overflow
        (samples beyond ``nbins * bin_width``).  A quantile landing among the
        overflow samples returns the exact tracked maximum instead of the
        last bin's midpoint, which used to silently under-report high
        percentiles for long-tailed distributions.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be within [0, 100]")
        if self._n == 0:
            return 0.0
        target = self._n * q / 100.0
        cum = np.cumsum(self._counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, self.nbins - 1)
        if idx == self.nbins - 1 and self._overflow:
            below_last = float(cum[-2]) if self.nbins > 1 else 0.0
            in_range_last = self._counts[-1] - self._overflow
            if target > below_last + in_range_last:
                return self.max
        return (idx + 0.5) * self.bin_width

    def reset(self) -> None:
        self._counts = [0] * self.nbins
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = None
        self._max = None
        self._overflow = 0

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self._n}, mean={self.mean:.2f})"


class StatGroup:
    """Named collection of counters and histograms.

    Components create one group each (``vault3.stats``), register their
    counters once at construction time, and bump ``counter.value`` directly in
    hot paths (no dict lookups per event).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create a counter."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        return c

    def histogram(self, name: str, nbins: int = 64, bin_width: int = 16) -> Histogram:
        """Get-or-create a histogram."""
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(name, nbins=nbins, bin_width=bin_width)
            self._histograms[name] = h
        return h

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()

    def as_dict(self) -> Dict[str, Number]:
        """Flatten to ``{name: value}`` (histograms contribute mean/n)."""
        out: Dict[str, Number] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, h in self._histograms.items():
            out[f"{name}.n"] = h.n
            out[f"{name}.mean"] = h.mean
        return out

    def merge(self, other: "StatGroup") -> None:
        """Accumulate another group's counters into this one (for per-vault
        aggregation).  Histograms merge counts and moments approximately by
        re-adding means; exact merge is not needed for reporting."""
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, h in other._histograms.items():
            mine = self.histogram(name, nbins=h.nbins, bin_width=h.bin_width)
            if mine.nbins == h.nbins and mine.bin_width == h.bin_width:
                mine._counts = [a + b for a, b in zip(mine._counts, h._counts)]
                mine._overflow += h._overflow
            # merge running moments via pooled update
            n1, n2 = mine._n, h._n
            if n2:
                delta = h._mean - mine._mean
                tot = n1 + n2
                mine._mean += delta * n2 / tot
                mine._m2 += h._m2 + delta * delta * n1 * n2 / tot
                mine._n = tot
                if mine._min is None or (h._min is not None and h._min < mine._min):
                    mine._min = h._min
                if mine._max is None or (h._max is not None and h._max > mine._max):
                    mine._max = h._max

    def __repr__(self) -> str:
        return (
            f"StatGroup({self.name}, counters={len(self._counters)}, "
            f"histograms={len(self._histograms)})"
        )


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports per-workload speedups this way."""
    vals: List[float] = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(vals))))
