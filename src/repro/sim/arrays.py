"""Shared NumPy state-array layer for the simulation kernel.

Three kinds of consumers need *wide* scans over kernel state - scans whose
working set is every bank in the device (or every record in a trace), not
the two or three objects a single request touches:

* the trace replay loop retires hundreds of thousands of records whose
  per-record arithmetic (cycle bump, retire count) is a pure function of
  the trace - :func:`replay_tables` precomputes it vectorized at build
  time so the replay loop pays one list index where it used to pay a
  ceil-division and two adds per record;
* the observability tick (``repro.obs.timeseries``) folds every bank's
  row-buffer outcome counters into per-vault conflict rates each epoch -
  :class:`BankArrays` gathers the 512-bank state in one fused pass and
  hands the arithmetic to NumPy;
* campaign- and bench-level analyses (readiness distributions, conflict
  heat, idle accounting) want the same arrays without re-deriving the
  gather loop - :meth:`BankArrays.refresh` plus the mask helpers are the
  single shared implementation.

The per-request hot paths (FR-FCFS pick, bank FSM timing) deliberately do
**not** route through NumPy: their scan sets are tiny (the banks with
queued work - typically one to four), and a vectorized op over a 16-wide
array costs more in NumPy dispatch than the whole scalar scan.  The
scalar inlined scans in ``repro.vault`` remain the hot-path
implementation; this module is the wide-scan complement, and
:meth:`BankArrays.ready_mask` / :meth:`BankArrays.frfcfs_candidates`
provide the vectorized reference used to cross-check them in tests.

Everything here is read-only with respect to simulation state: gathers
copy scalars out of the live objects, so using (or not using) this layer
can never perturb event order or result digests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["replay_tables", "decode_arrays", "BankArrays"]


def replay_tables(gaps: Any, issue_width: int) -> Tuple[List[int], List[int]]:
    """Vectorized precompute of the per-record replay arithmetic.

    Returns ``(cycle_bumps, retire_counts)`` as plain lists (scalar NumPy
    indexing boxes a fresh scalar per read; list indexing does not):

    * ``cycle_bumps[i]`` - cycles the core front-end needs to issue the
      ``gaps[i]`` non-memory instructions before record ``i`` plus the
      record itself: ``ceil(gaps[i] / issue_width)``.
    * ``retire_counts[i]`` - total instructions retired once record ``i``
      commits: ``cumsum(gaps + 1)[i]``.
    """
    if issue_width < 1:
        raise ValueError("issue_width must be >= 1")
    g = np.asarray(gaps, dtype=np.int64)
    bumps = -((-g) // issue_width)
    retire = np.cumsum(g + 1)
    return bumps.tolist(), retire.tolist()


def decode_arrays(addrs: Any, mapping: Any) -> Dict[str, np.ndarray]:
    """Vectorized address decode over a whole trace.

    ``mapping`` is an :class:`~repro.hmc.address.AddressMapping` (or any
    object exposing the same shift/mask attributes).  Returns int64 arrays
    keyed ``vault`` / ``bank`` / ``row`` / ``column``, bit-identical to
    per-address :meth:`~repro.hmc.address.AddressMapping.decode` (the
    randomized equivalence is pinned in tests/test_arrays.py).
    """
    a = np.asarray(addrs, dtype=np.int64)
    return {
        "vault": (a >> mapping.vault_shift) & mapping.vault_mask,
        "bank": (a >> mapping.bank_shift) & mapping.bank_mask,
        "row": a >> mapping.row_shift,
        "column": (a >> mapping.column_shift) & mapping.column_mask,
    }


class BankArrays:
    """Fused NumPy snapshot of every bank's FSM and outcome state.

    One :meth:`refresh` walks all banks exactly once and refills the
    preallocated arrays in place; all derived views (per-vault outcome
    sums, readiness masks, conflict deltas) are then vectorized.  The
    arrays are snapshots - call :meth:`refresh` again after simulation
    state may have moved.
    """

    __slots__ = (
        "banks",
        "nvaults",
        "banks_per_vault",
        "busy_until",
        "open_row",
        "hits",
        "empties",
        "conflicts",
    )

    def __init__(self, vaults: List[Any]) -> None:
        if not vaults:
            raise ValueError("need at least one vault")
        self.nvaults = len(vaults)
        self.banks: List[Any] = [b for vc in vaults for b in vc.banks]
        self.banks_per_vault = len(vaults[0].banks)
        n = len(self.banks)
        self.busy_until = np.zeros(n, dtype=np.int64)
        self.open_row = np.full(n, -1, dtype=np.int64)
        self.hits = np.zeros(n, dtype=np.int64)
        self.empties = np.zeros(n, dtype=np.int64)
        self.conflicts = np.zeros(n, dtype=np.int64)
        self.refresh()

    def refresh(self) -> None:
        """One fused gather pass: refill every array from the live banks."""
        # A single listcomp per field keeps the Python-level work at one
        # attribute read per bank per field with the loop body in C.
        banks = self.banks
        self.busy_until[:] = [b.busy_until for b in banks]
        self.open_row[:] = [
            -1 if b.open_row is None else b.open_row for b in banks
        ]
        self.hits[:] = [b.hits for b in banks]
        self.empties[:] = [b.empties for b in banks]
        self.conflicts[:] = [b.conflicts for b in banks]

    def refresh_outcomes(self) -> None:
        """Refill only the outcome counters (hits/empties/conflicts) - the
        subset the per-epoch telemetry tick consumes.  Skipping the FSM
        fields keeps the tick inside its < 3 % overhead budget."""
        banks = self.banks
        self.hits[:] = [b.hits for b in banks]
        self.empties[:] = [b.empties for b in banks]
        self.conflicts[:] = [b.conflicts for b in banks]

    # ------------------------------------------------------------------
    # Derived views (vectorized; operate on the last refresh() snapshot)
    # ------------------------------------------------------------------
    def per_vault(self, field: np.ndarray) -> np.ndarray:
        """Reshape a flat per-bank array to ``(nvaults, banks_per_vault)``."""
        return field.reshape(self.nvaults, self.banks_per_vault)

    def vault_outcome_sums(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(conflicts, total_accesses)`` summed per vault - the conflict
        accounting the timeseries tick and campaign scans consume."""
        shape = (self.nvaults, self.banks_per_vault)
        conf = self.conflicts.reshape(shape).sum(axis=1)
        acc = conf + self.hits.reshape(shape).sum(axis=1)
        acc = acc + self.empties.reshape(shape).sum(axis=1)
        return conf, acc

    def ready_mask(self, now: int) -> np.ndarray:
        """Bank FSM timing check, vectorized: True where the bank can accept
        a command at ``now`` (``busy_until <= now``)."""
        return self.busy_until <= now

    def row_hit_mask(self, rows: Any) -> np.ndarray:
        """True where ``rows[i]`` is already open in bank ``i`` (vectorized
        row-buffer classification; -1 never matches)."""
        r = np.asarray(rows, dtype=np.int64)
        return (self.open_row == r) & (r >= 0)

    def frfcfs_candidates(self, now: int, rows: Any) -> np.ndarray:
        """FR-FCFS candidate filter: banks ready at ``now`` whose open row
        matches the requested ``rows[i]``.  The vectorized reference for
        the scheduler's scalar first-ready scan."""
        return self.ready_mask(now) & self.row_hit_mask(rows)

    def min_busy_until(self, bank_ids: Optional[Any] = None) -> int:
        """Earliest ``busy_until`` over ``bank_ids`` (all banks when None) -
        the wake-timer input, vectorized."""
        if bank_ids is None:
            return int(self.busy_until.min())
        idx = np.asarray(bank_ids, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("bank_ids must be non-empty")
        return int(self.busy_until[idx].min())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BankArrays vaults={self.nvaults} "
            f"banks={len(self.banks)}>"
        )
