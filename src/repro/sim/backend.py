"""Engine backend selection: pure Python vs an optional compiled kernel.

The simulation kernel (:mod:`repro.sim.engine`) is written to be
*mypyc-clean*: hot classes use ``__slots__``/fixed attribute sets, heap
entries are plain tuples, and the run loop does no dynamic attribute games
- so the same source compiles ahead-of-time with `mypyc
<https://mypyc.readthedocs.io/>`_ into a C extension with identical
semantics.  This module is the seam that picks which incarnation a
:class:`~repro.system.System` instantiates:

``REPRO_BACKEND=python`` (default)
    Always the pure-Python kernel.  The benchmark pins
    (``benchmarks/bench_hotpath.py``) are measured against this backend.

``REPRO_BACKEND=compiled``
    Prefer the compiled kernel (module ``repro.sim._engine_compiled``,
    produced by :func:`build`).  When the artifact is missing - mypyc not
    installed, or the build never ran - the selection **falls back
    transparently** to pure Python and records a one-line notice; callers
    (CLI, benches, CI) surface the notice instead of failing.  Digest
    parity between the two backends is structural: both are the same
    module source, so event ordering and results are byte-identical - CI
    asserts it whenever the compiled artifact exists.

``REPRO_BACKEND=auto``
    Compiled when present, silently python otherwise (no notice).

The seam deliberately selects a *module*, not a class: everything the
kernel exports (``Engine``, ``Event``) comes from the resolved module, so
a compiled build accelerates event dispatch for every consumer without a
single call-site change.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass
from types import ModuleType
from typing import Mapping, Optional

__all__ = [
    "BACKEND_ENV",
    "COMPILED_MODULE",
    "VALID_BACKENDS",
    "BackendInfo",
    "resolve",
    "engine_module",
    "engine_class",
    "build",
]

#: environment variable consulted by :func:`resolve`
BACKEND_ENV = "REPRO_BACKEND"

#: import name of the mypyc-compiled kernel artifact
COMPILED_MODULE = "repro.sim._engine_compiled"

VALID_BACKENDS = ("python", "compiled", "auto")


@dataclass(frozen=True)
class BackendInfo:
    """Outcome of one backend resolution.

    ``requested`` is the (validated) env selection, ``active`` the backend
    actually in effect, and ``notice`` a single human-readable line when
    the two differ (the compiled fallback); None otherwise.
    """

    requested: str
    active: str
    notice: Optional[str] = None


def _load_compiled() -> Optional[ModuleType]:
    try:
        return importlib.import_module(COMPILED_MODULE)
    except ImportError:
        return None


def resolve(env: Optional[Mapping[str, str]] = None) -> BackendInfo:
    """Resolve the backend selection from ``env`` (default ``os.environ``).

    Never raises on a missing compiled artifact - ``compiled`` degrades to
    ``python`` with a notice.  An *unknown* value raises immediately: a
    typo silently running the slow backend would invalidate measurements.
    """
    source = os.environ if env is None else env
    requested = source.get(BACKEND_ENV, "python").strip().lower() or "python"
    if requested not in VALID_BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV}={requested!r} is not one of {VALID_BACKENDS}"
        )
    if requested == "python":
        return BackendInfo("python", "python")
    compiled = _load_compiled()
    if compiled is not None:
        return BackendInfo(requested, "compiled")
    if requested == "auto":
        return BackendInfo("auto", "python")
    return BackendInfo(
        "compiled",
        "python",
        notice=(
            f"{BACKEND_ENV}=compiled requested but {COMPILED_MODULE} is not "
            "built (run `python -m repro.sim.backend --build`; requires "
            "mypyc); falling back to the pure-Python kernel"
        ),
    )


def engine_module(env: Optional[Mapping[str, str]] = None) -> ModuleType:
    """The kernel module for the resolved backend (see :func:`resolve`)."""
    info = resolve(env)
    if info.active == "compiled":
        mod = _load_compiled()
        assert mod is not None  # resolve() just imported it
        return mod
    return importlib.import_module("repro.sim.engine")


def engine_class(env: Optional[Mapping[str, str]] = None) -> type:
    """The ``Engine`` class of the resolved backend.

    ``System``/``FabricSystem`` call this once per construction; the cost
    is one env read and (at most) one cached module import.
    """
    return engine_module(env).Engine


# ----------------------------------------------------------------------
# Build entry point
# ----------------------------------------------------------------------
def build(verbose: bool = True) -> bool:
    """Attempt to compile the kernel with mypyc.  Returns True on success.

    Gracefully reports (and returns False) when mypyc is unavailable -
    the CI perf-smoke matrix treats that as skip-with-notice, not failure.
    """
    try:
        from mypyc.build import mypycify  # noqa: F401
    except ImportError:
        if verbose:
            print(
                "mypyc is not installed; compiled backend unavailable "
                "(pure-Python kernel remains fully supported)"
            )
        return False
    import shutil
    import subprocess
    import sys
    import tempfile

    src = os.path.join(os.path.dirname(__file__), "engine.py")
    with tempfile.TemporaryDirectory() as tmp:
        # mypyc compiles a module in place under the name it is given; the
        # artifact is staged under the compiled alias so both incarnations
        # can coexist (and the pure-Python kernel stays importable).
        alias = os.path.join(tmp, "_engine_compiled.py")
        shutil.copyfile(src, alias)
        rc = subprocess.call(
            [sys.executable, "-m", "mypyc", alias], cwd=os.path.dirname(__file__)
        )
    if verbose:
        print("mypyc build " + ("succeeded" if rc == 0 else f"failed (rc={rc})"))
    return rc == 0


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - CLI shim
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--build", action="store_true", help="compile the kernel with mypyc"
    )
    args = parser.parse_args(argv)
    if args.build:
        return 0 if build() else 1
    info = resolve()
    print(f"requested={info.requested} active={info.active}")
    if info.notice:
        print(f"notice: {info.notice}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
