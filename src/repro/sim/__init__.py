"""Discrete-event simulation kernel used by every other subsystem.

The kernel is deliberately tiny: an event heap keyed by ``(time, seq)`` plus
statistics primitives.  All simulated components (vault controllers, links,
cores, ...) register callbacks on an :class:`~repro.sim.engine.Engine` and
never busy-wait, which keeps the Python event count per memory request small
(roughly: arrive-at-vault, bank-complete, response-at-core).
"""

from repro.sim.engine import Engine, Event
from repro.sim.sampler import Sampler
from repro.sim.stats import Counter, Histogram, StatGroup, geomean

__all__ = [
    "Engine",
    "Event",
    "Sampler",
    "Counter",
    "Histogram",
    "StatGroup",
    "geomean",
]
