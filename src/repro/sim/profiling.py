"""Per-subsystem attribution of cProfile data.

The profiler gives per-function rows; what a perf investigation actually
wants first is "where does the time go per *subsystem*" - engine loop vs
FR-FCFS scheduler vs bank timing vs prefetcher decision logic vs
instrumentation.  This module maps profile rows onto the repo's subsystem
layout by filename and aggregates them, for two consumers:

* ``python -m repro profile`` prints the table (and ``--json`` emits it
  machine-readable), so a regression can be localised without reading raw
  pstats output.
* ``benchmarks/bench_hotpath.py`` embeds the breakdown in
  ``BENCH_hotpath.json`` so the committed perf pin records not just how fast
  the hot loop was but *where* it spent its time when pinned.

Attribution rules: a function belongs to the first subsystem whose path
fragment matches its source file.  ``tottime`` (exclusive time) is additive
- the subsystem rows sum to the profiled total - while ``cumtime`` is
reported as the largest single-function cumulative time in the subsystem
(its dominant entry point); summing cumtime across functions would double
count nested calls within a subsystem.

One refinement on top of the path rule: the engine's *dispatcher* frames
(``Engine.run`` / ``Engine.step``) are excluded from the cumtime
attribution.  Their cumulative time is the whole batch of callbacks they
dispatch - every subsystem's work re-counted - so letting them set the
engine row's ``cumtime_s`` made the engine appear to dominate any profile
(the double-count formerly visible in BENCH_hotpath.json's profile
block).  Their exclusive time still lands in the engine's ``tottime_s``
(the dispatch loop is genuine engine work); only the cumulative
aggregation skips them, so the engine row's ``cumtime_s`` now names the
engine's own dominant non-dispatcher entry point.
"""

from __future__ import annotations

import pstats
from typing import Any, Dict, List, Tuple

#: ordered (subsystem, path fragments) - first match wins.  The fragments
#: use forward slashes; profile filenames are normalised before matching.
SUBSYSTEM_PATHS: List[Tuple[str, Tuple[str, ...]]] = [
    ("engine", ("/sim/engine.py",)),
    ("scheduler", ("/vault/scheduler.py",)),
    ("vault", ("/vault/",)),  # controller + queues (scheduler matched above)
    ("bank", ("/dram/",)),
    (
        "prefetcher",
        (
            "/core/camps.py",
            "/core/prefetcher.py",
            "/core/tables.py",
            "/core/buffer.py",
            "/core/schemes.py",
        ),
    ),
    ("tracer", ("/obs/",)),
    ("host", ("/hmc/", "/interconnect/", "/request.py",)),
    ("core", ("/cpu/", "/system.py",)),
    ("stats", ("/sim/stats.py", "/metrics/",)),
]

OTHER = "other"

#: dispatcher frames - ``(path fragment, function name)`` pairs whose
#: cumulative time is the callbacks they dispatch, not subsystem work;
#: excluded from cumtime attribution (see module docstring)
DISPATCH_FRAMES: Tuple[Tuple[str, str], ...] = (
    ("/sim/engine.py", "run"),
    ("/sim/engine.py", "step"),
)


def is_dispatcher(filename: str, funcname: str) -> bool:
    """True for frames whose cumtime must not be charged to a subsystem."""
    path = filename.replace("\\", "/")
    for frag, name in DISPATCH_FRAMES:
        if funcname == name and frag in path:
            return True
    return False


def classify(filename: str) -> str:
    """Subsystem name for one profile-row source file."""
    path = filename.replace("\\", "/")
    for name, fragments in SUBSYSTEM_PATHS:
        for frag in fragments:
            if frag in path:
                return name
    return OTHER


def subsystem_breakdown(profiler: Any) -> Dict[str, Dict[str, float]]:
    """Aggregate a ``cProfile.Profile`` (or ``pstats.Stats``) by subsystem.

    Returns ``{subsystem: {"calls": int, "tottime_s": float,
    "cumtime_s": float}}`` sorted by descending exclusive time.
    ``tottime_s`` values are additive across subsystems; ``cumtime_s`` is
    the dominant entry point's cumulative time (see module docstring).
    """
    stats = profiler if isinstance(profiler, pstats.Stats) else pstats.Stats(profiler)
    agg: Dict[str, Dict[str, float]] = {}
    for (filename, _lineno, fname), (_cc, ncalls, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        name = classify(filename)
        row = agg.setdefault(name, {"calls": 0, "tottime_s": 0.0, "cumtime_s": 0.0})
        row["calls"] += ncalls
        row["tottime_s"] += tottime
        # Dispatcher cumtime is every subsystem's work re-counted; skip it
        # (see module docstring) so rows reflect their own entry points.
        if cumtime > row["cumtime_s"] and not is_dispatcher(filename, fname):
            row["cumtime_s"] = cumtime
    return dict(
        sorted(agg.items(), key=lambda kv: kv[1]["tottime_s"], reverse=True)
    )


def breakdown_table(breakdown: Dict[str, Dict[str, float]]) -> str:
    """Human-readable table of :func:`subsystem_breakdown` output."""
    total = sum(row["tottime_s"] for row in breakdown.values()) or 1.0
    lines = [f"{'subsystem':<12} {'calls':>10} {'tottime':>9} {'share':>7} {'cumtime':>9}"]
    for name, row in breakdown.items():
        lines.append(
            f"{name:<12} {int(row['calls']):>10} {row['tottime_s']:>8.3f}s "
            f"{row['tottime_s'] / total:>6.1%} {row['cumtime_s']:>8.3f}s"
        )
    return "\n".join(lines)


def profile_payload(
    breakdown: Dict[str, Dict[str, float]],
    *,
    cycles: int,
    events_fired: int,
    wall_seconds: float,
) -> Dict[str, Any]:
    """The machine-readable profile summary shared by ``repro profile
    --json`` and ``bench_hotpath.py`` (which embeds it verbatim)."""
    return {
        "cycles": cycles,
        "events_fired": events_fired,
        "wall_seconds": wall_seconds,
        "cycles_per_sec": cycles / wall_seconds if wall_seconds else 0.0,
        "events_per_sec": events_fired / wall_seconds if wall_seconds else 0.0,
        "subsystems": breakdown,
    }
