"""Per-subsystem attribution of cProfile data.

The profiler gives per-function rows; what a perf investigation actually
wants first is "where does the time go per *subsystem*" - engine loop vs
FR-FCFS scheduler vs bank timing vs prefetcher decision logic vs
instrumentation.  This module maps profile rows onto the repo's subsystem
layout by filename and aggregates them, for two consumers:

* ``python -m repro profile`` prints the table (and ``--json`` emits it
  machine-readable), so a regression can be localised without reading raw
  pstats output.
* ``benchmarks/bench_hotpath.py`` embeds the breakdown in
  ``BENCH_hotpath.json`` so the committed perf pin records not just how fast
  the hot loop was but *where* it spent its time when pinned.

Attribution rules: a function belongs to the first subsystem whose path
fragment matches its source file.  ``tottime`` (exclusive time) is additive
- the subsystem rows sum to the profiled total - while ``cumtime`` is
reported as the largest single-function cumulative time in the subsystem
(its dominant entry point); summing cumtime across functions would double
count nested calls within a subsystem.
"""

from __future__ import annotations

import pstats
from typing import Any, Dict, List, Tuple

#: ordered (subsystem, path fragments) - first match wins.  The fragments
#: use forward slashes; profile filenames are normalised before matching.
SUBSYSTEM_PATHS: List[Tuple[str, Tuple[str, ...]]] = [
    ("engine", ("/sim/engine.py",)),
    ("scheduler", ("/vault/scheduler.py",)),
    ("vault", ("/vault/",)),  # controller + queues (scheduler matched above)
    ("bank", ("/dram/",)),
    (
        "prefetcher",
        (
            "/core/camps.py",
            "/core/prefetcher.py",
            "/core/tables.py",
            "/core/buffer.py",
            "/core/schemes.py",
        ),
    ),
    ("tracer", ("/obs/",)),
    ("host", ("/hmc/", "/interconnect/", "/request.py",)),
    ("core", ("/cpu/", "/system.py",)),
    ("stats", ("/sim/stats.py", "/metrics/",)),
]

OTHER = "other"


def classify(filename: str) -> str:
    """Subsystem name for one profile-row source file."""
    path = filename.replace("\\", "/")
    for name, fragments in SUBSYSTEM_PATHS:
        for frag in fragments:
            if frag in path:
                return name
    return OTHER


def subsystem_breakdown(profiler: Any) -> Dict[str, Dict[str, float]]:
    """Aggregate a ``cProfile.Profile`` (or ``pstats.Stats``) by subsystem.

    Returns ``{subsystem: {"calls": int, "tottime_s": float,
    "cumtime_s": float}}`` sorted by descending exclusive time.
    ``tottime_s`` values are additive across subsystems; ``cumtime_s`` is
    the dominant entry point's cumulative time (see module docstring).
    """
    stats = profiler if isinstance(profiler, pstats.Stats) else pstats.Stats(profiler)
    agg: Dict[str, Dict[str, float]] = {}
    for (filename, _lineno, _fname), (_cc, ncalls, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        name = classify(filename)
        row = agg.setdefault(name, {"calls": 0, "tottime_s": 0.0, "cumtime_s": 0.0})
        row["calls"] += ncalls
        row["tottime_s"] += tottime
        if cumtime > row["cumtime_s"]:
            row["cumtime_s"] = cumtime
    return dict(
        sorted(agg.items(), key=lambda kv: kv[1]["tottime_s"], reverse=True)
    )


def breakdown_table(breakdown: Dict[str, Dict[str, float]]) -> str:
    """Human-readable table of :func:`subsystem_breakdown` output."""
    total = sum(row["tottime_s"] for row in breakdown.values()) or 1.0
    lines = [f"{'subsystem':<12} {'calls':>10} {'tottime':>9} {'share':>7} {'cumtime':>9}"]
    for name, row in breakdown.items():
        lines.append(
            f"{name:<12} {int(row['calls']):>10} {row['tottime_s']:>8.3f}s "
            f"{row['tottime_s'] / total:>6.1%} {row['cumtime_s']:>8.3f}s"
        )
    return "\n".join(lines)


def profile_payload(
    breakdown: Dict[str, Dict[str, float]],
    *,
    cycles: int,
    events_fired: int,
    wall_seconds: float,
) -> Dict[str, Any]:
    """The machine-readable profile summary shared by ``repro profile
    --json`` and ``bench_hotpath.py`` (which embeds it verbatim)."""
    return {
        "cycles": cycles,
        "events_fired": events_fired,
        "wall_seconds": wall_seconds,
        "cycles_per_sec": cycles / wall_seconds if wall_seconds else 0.0,
        "events_per_sec": events_fired / wall_seconds if wall_seconds else 0.0,
        "subsystems": breakdown,
    }
