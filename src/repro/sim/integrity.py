"""Opt-in simulation integrity layer: watchdog, invariants, crash dumps.

Long campaign runs (repro.campaign) execute thousands of cells behind
per-cell timeouts.  A deterministic hang - a livelock where events keep
firing at one cycle, or a component that stops retiring requests - burns
the whole timeout, gets retried, and burns it again, all without a word of
diagnosis.  This module makes such failures loud and cheap instead:

* :class:`Watchdog` - a forward-progress monitor polled from the engine's
  hot loop every ``check_interval`` fired events.  If simulated time has
  not advanced for ``stall_polls`` consecutive polls, the run is wedged
  (real workloads always advance time within a few thousand events); the
  watchdog raises :class:`ForwardProgressError` with a histogram of the
  same-cycle callbacks naming the stuck component.
* :class:`InvariantChecker` - structural checks: queue occupancy within
  the configured bounds, prefetch-buffer occupancy within capacity, bank
  state-machine legality (ACT/PRE balance vs. the open row), and - after
  the run drains - request conservation (every issued request retired
  exactly once, no request left queued).
* :func:`crash_report` / :func:`write_crash_dump` - a JSON snapshot of
  engine state, per-vault queue depths, bank states and the last-K trace
  events, written on any violation or unhandled engine exception.
* :class:`IntegrityMonitor` - wires the above onto a built
  :class:`~repro.system.System` and converts any failure into a single
  :class:`IntegrityError` carrying a compact ``report`` (what the campaign
  manifest records) and the ``dump_path`` of the full snapshot.

Everything here is **off by default**.  With integrity disabled the engine
pays one falsy check per fired event and results are byte-identical to an
unmonitored run (``benchmarks/bench_fault_overhead.py`` holds the combined
faults+integrity plumbing under 2% overhead).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

#: environment fallback for the crash-dump directory
CRASH_DIR_ENV = "REPRO_CRASH_DIR"
_DEFAULT_CRASH_DIR = "crash_dumps"


class IntegrityError(RuntimeError):
    """A simulation integrity failure (wedge, invariant violation, or
    unhandled engine exception), with diagnosis attached.

    ``report`` is a compact JSON-safe diagnosis (reason, stuck component,
    violations) - small enough to travel through the campaign's worker
    pipe and land in the manifest's error record.  ``dump_path`` locates
    the full crash-dump snapshot on disk, when one was written.
    """

    def __init__(
        self,
        message: str,
        report: Optional[Dict[str, Any]] = None,
        dump_path: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.report: Dict[str, Any] = report or {}
        self.dump_path = dump_path


class ForwardProgressError(IntegrityError):
    """The watchdog found simulated time wedged (events firing, ``now``
    frozen) for ``stall_polls`` consecutive polls."""


class InvariantViolation(IntegrityError):
    """A structural invariant check failed (queue bounds, bank legality,
    or request conservation)."""


@dataclass(frozen=True)
class IntegrityConfig:
    """Tuning knobs for the integrity layer.

    ``check_interval`` is in *fired events*: the watchdog (and the bounds
    invariants riding on it) run once per that many callbacks, keeping the
    per-event cost of monitoring to one integer compare.  A wedge is
    declared after ``stall_polls`` polls without time advancing - i.e.
    ``check_interval * stall_polls`` events at one cycle, far beyond any
    legitimate same-cycle burst in this simulator.
    """

    check_interval: int = 4096  # events between watchdog polls
    stall_polls: int = 8  # unadvanced polls before declaring a wedge
    invariants: bool = True  # run structural checks at each poll + at end
    last_events: int = 64  # trace-event tail captured into crash dumps

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        if self.stall_polls < 1:
            raise ValueError("stall_polls must be >= 1")
        if self.last_events < 0:
            raise ValueError("last_events must be non-negative")


class Watchdog:
    """Forward-progress monitor, polled from :meth:`Engine.run`.

    The engine calls :meth:`poll` every ``interval`` fired events (the
    engine owns the counting so its hot loop stays free of method calls on
    the common path).  Polling is O(1); diagnosis - sampling the heap for
    same-cycle callbacks - only happens when a wedge is declared.
    """

    __slots__ = ("engine", "config", "interval", "on_poll", "_last_now", "_stuck_polls")

    def __init__(self, engine: Any, config: Optional[IntegrityConfig] = None) -> None:
        self.engine = engine
        self.config = config or IntegrityConfig()
        self.interval = self.config.check_interval
        #: optional hook run at every poll (the monitor's bounds checks)
        self.on_poll: Optional[Callable[[int], None]] = None
        self._last_now = -1
        self._stuck_polls = 0

    def poll(self, now: int) -> None:
        """One watchdog tick; raises :class:`ForwardProgressError` when the
        simulation has been wedged at one cycle for ``stall_polls`` polls."""
        if now == self._last_now:
            self._stuck_polls += 1
            if self._stuck_polls >= self.config.stall_polls:
                diagnosis = self.diagnose()
                events = self._stuck_polls * self.interval
                stuck = diagnosis.get("stuck_component") or "unknown component"
                raise ForwardProgressError(
                    f"no forward progress: ~{events} events fired at cycle "
                    f"{now} without time advancing (stuck: {stuck})",
                    report=diagnosis,
                )
        else:
            self._last_now = now
            self._stuck_polls = 0
        cb = self.on_poll
        if cb is not None:
            cb(now)

    def diagnose(self) -> Dict[str, Any]:
        """Name the wedge: histogram the live heap callbacks scheduled at
        the current cycle and point at the most common one."""
        engine = self.engine
        now = engine.now
        histogram: Dict[str, int] = {}
        for ev in engine.live_events():
            if ev.time != now:
                continue
            name = getattr(ev.fn, "__qualname__", None) or repr(ev.fn)
            histogram[name] = histogram.get(name, 0) + 1
        ranked = sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "reason": "forward_progress_stall",
            "now": now,
            "stuck_polls": self._stuck_polls,
            "events_per_poll": self.interval,
            "same_cycle_callbacks": dict(ranked[:10]),
            "stuck_component": ranked[0][0] if ranked else None,
        }


class InvariantChecker:
    """Structural invariant checks over a built :class:`~repro.system.System`.

    Each ``check_*`` method returns a list of human-readable violation
    strings (empty = clean) rather than raising, so the monitor can batch
    every violation into one report.
    """

    def __init__(self, system: Any, check_bank_legality: bool = True) -> None:
        self.system = system
        # ACT/PRE balance is only meaningful when the command counters were
        # never reset mid-run (a warmup boundary zeroes them).
        self.check_bank_legality = check_bank_legality

    def check_bounds(self) -> List[str]:
        """Occupancy bounds + bank state-machine legality (any time)."""
        violations: List[str] = []
        for vc in self.system.device.vaults:
            q = vc.queues
            if len(q.reads) > q.read_depth:
                violations.append(
                    f"vault{vc.vault_id}: read queue {len(q.reads)} > depth {q.read_depth}"
                )
            if len(q.writes) > q.write_depth:
                violations.append(
                    f"vault{vc.vault_id}: write queue {len(q.writes)} > depth {q.write_depth}"
                )
            if vc.buffer is not None and len(vc.buffer) > vc.buffer.capacity:
                violations.append(
                    f"vault{vc.vault_id}: prefetch buffer {len(vc.buffer)} "
                    f"> capacity {vc.buffer.capacity}"
                )
            if self.check_bank_legality:
                for bank in vc.banks:
                    balance = bank.acts - bank.pres
                    expect = 1 if bank.open_row is not None else 0
                    if balance != expect:
                        violations.append(
                            f"vault{vc.vault_id}.bank{bank.bank_id}: illegal state - "
                            f"acts-pres={balance} but open_row={bank.open_row!r}"
                        )
        return violations

    def check_conservation(self) -> List[str]:
        """Request conservation - only valid after the run has drained:
        every issued request must have retired exactly once, leaving no
        request outstanding at the host or resident in any queue."""
        violations: List[str] = []
        host = self.system.host
        if host.outstanding != 0:
            violations.append(
                f"host: {host.outstanding} requests issued but never retired"
            )
        for vc in self.system.device.vaults:
            if len(vc.queues) != 0:
                q = vc.queues
                violations.append(
                    f"vault{vc.vault_id}: {len(q)} requests left queued after drain "
                    f"(reads={len(q.reads)} writes={len(q.writes)} "
                    f"staged={len(q.staging)})"
                )
        return violations


def crash_report(
    system: Any,
    error: Optional[BaseException] = None,
    violations: Optional[List[str]] = None,
    last_events: int = 64,
) -> Dict[str, Any]:
    """Full JSON-safe snapshot of a (possibly wedged) simulation.

    Captures everything a post-mortem needs without re-running: engine
    state and a sample of the next scheduled callbacks, per-vault queue
    depths and open-bank states, host counters, the error and any
    invariant violations, plus the last-K trace events when a tracer is
    attached.
    """
    engine = system.engine
    report: Dict[str, Any] = {
        "kind": "repro.crash_dump",
        "version": 1,
        "workload": system.workload,
        "scheme": system.config.scheme,
        "engine": {
            "now": engine.now,
            "events_fired": engine.events_fired,
            "pending": engine.pending,
            "heap_size": len(engine._heap),
        },
    }
    next_events = []
    for ev in sorted(engine.live_events())[:10]:
        next_events.append(
            {
                "time": ev.time,
                "priority": ev.priority,
                "weak": ev.weak,
                "fn": getattr(ev.fn, "__qualname__", None) or repr(ev.fn),
            }
        )
    report["engine"]["next_events"] = next_events
    if error is not None:
        report["error"] = {
            "type": type(error).__name__,
            "message": str(error),
        }
        diagnosis = getattr(error, "report", None)
        if diagnosis:
            report["diagnosis"] = diagnosis
    if violations:
        report["violations"] = list(violations)
    host = system.host
    report["host"] = {
        "outstanding": host.outstanding,
        "reads_sent": host.stats.counters["reads_sent"].value,
        "writes_sent": host.stats.counters["writes_sent"].value,
        "completions": host.stats.counters["completions"].value,
    }
    if host.faults_enabled:
        report["link_faults"] = host.link_fault_summary()
    vaults = []
    for vc in system.device.vaults:
        q = vc.queues
        open_banks = [
            {
                "bank": b.bank_id,
                "open_row": b.open_row,
                "busy_until": b.busy_until,
            }
            for b in vc.banks
            if b.open_row is not None or b.busy_until > engine.now
        ]
        vaults.append(
            {
                "vault": vc.vault_id,
                "reads": len(q.reads),
                "writes": len(q.writes),
                "staging": len(q.staging),
                "buffer_occupancy": len(vc.buffer) if vc.buffer is not None else 0,
                "open_banks": open_banks,
            }
        )
    report["vaults"] = vaults
    tracer = getattr(system, "tracer", None)
    if tracer is not None and last_events > 0 and tracer.events:
        report["last_trace_events"] = [
            e.to_dict() for e in tracer.events[-last_events:]
        ]
    return report


def write_crash_dump(report: Dict[str, Any], directory: Optional[str] = None) -> str:
    """Write one crash report as pretty-printed JSON; returns the path.

    The directory defaults to ``$REPRO_CRASH_DIR`` or ``crash_dumps/`` under
    the working directory.  Filenames are derived from the run's identity
    (workload, scheme, wedge cycle) with a numeric suffix on collision, so
    concurrent campaign workers never clobber each other.
    """
    base = Path(directory or os.environ.get(CRASH_DIR_ENV) or _DEFAULT_CRASH_DIR)
    base.mkdir(parents=True, exist_ok=True)
    workload = str(report.get("workload", "run")).replace("/", "_")
    scheme = str(report.get("scheme", "scheme")).replace("/", "_")
    cycle = report.get("engine", {}).get("now", 0)
    stem = f"crash_{workload}_{scheme}_cycle{cycle}"
    path = base / f"{stem}.json"
    n = 1
    while path.exists():
        path = base / f"{stem}_{n}.json"
        n += 1
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(report, indent=2, default=str))
    tmp.replace(path)
    return str(path)


class IntegrityMonitor:
    """Wires watchdog + invariants onto a System and owns failure handling.

    Installation happens at construction: the watchdog is attached as
    ``engine.watchdog`` (the engine polls it from the hot loop), and the
    bounds invariants ride on the watchdog's poll.  :meth:`check_final`
    runs the post-drain conservation checks; :meth:`failed` converts any
    exception into an :class:`IntegrityError` with a crash dump written
    and a compact diagnosis attached.
    """

    def __init__(
        self,
        system: Any,
        config: Optional[IntegrityConfig] = None,
        crash_dump_dir: Optional[str] = None,
    ) -> None:
        self.system = system
        self.config = config or IntegrityConfig()
        self.crash_dump_dir = crash_dump_dir
        self.checker = InvariantChecker(
            system,
            check_bank_legality=system.config.stats_warmup_cycles is None,
        )
        self.watchdog = Watchdog(system.engine, self.config)
        if self.config.invariants:
            self.watchdog.on_poll = self._poll_invariants
        system.engine.watchdog = self.watchdog

    def _poll_invariants(self, now: int) -> None:
        violations = self.checker.check_bounds()
        if violations:
            raise InvariantViolation(
                f"invariant violation at cycle {now}: {violations[0]}"
                + (f" (+{len(violations) - 1} more)" if len(violations) > 1 else ""),
                report={
                    "reason": "invariant_violation",
                    "now": now,
                    "violations": violations,
                },
            )

    def check_final(self) -> None:
        """Post-drain checks; raises a fully-dressed IntegrityError (crash
        dump written, diagnosis attached) on any violation."""
        if not self.config.invariants:
            return
        violations = self.checker.check_bounds() + self.checker.check_conservation()
        if violations:
            exc = InvariantViolation(
                f"post-run invariant violation: {violations[0]}"
                + (f" (+{len(violations) - 1} more)" if len(violations) > 1 else ""),
                report={
                    "reason": "invariant_violation",
                    "now": self.system.engine.now,
                    "violations": violations,
                },
            )
            raise self.failed(exc)

    def failed(self, exc: BaseException) -> IntegrityError:
        """Dress an exception for reporting: write the crash dump, build the
        compact diagnosis, and return the IntegrityError to raise."""
        report = getattr(exc, "report", None) or {}
        violations = report.get("violations")
        snapshot = crash_report(
            self.system,
            error=exc,
            violations=violations,
            last_events=self.config.last_events,
        )
        dump_path = write_crash_dump(snapshot, self.crash_dump_dir)
        diagnosis: Dict[str, Any] = {
            "reason": report.get("reason")
            or ("engine_exception" if not isinstance(exc, IntegrityError) else "integrity"),
            "error_type": type(exc).__name__,
            "message": str(exc),
            "now": self.system.engine.now,
            "events_fired": self.system.engine.events_fired,
            "crash_dump": dump_path,
        }
        if report.get("stuck_component"):
            diagnosis["stuck_component"] = report["stuck_component"]
        if violations:
            diagnosis["violations"] = violations
        if isinstance(exc, IntegrityError):
            exc.report = diagnosis
            exc.dump_path = dump_path
            return exc
        err = IntegrityError(
            f"simulation integrity failure: {exc}", report=diagnosis, dump_path=dump_path
        )
        return err
