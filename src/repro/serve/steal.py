"""Lease-based work stealing over the campaign manifest.

One manifest file, many scheduler processes: every scheduler that attaches
gets a fresh *generation* id (``max_gen + 1`` at attach, so a restarted
scheduler always outranks its own ghost), claims cells by appending
``claim`` records, and heartbeats by appending ``tick`` records.  Time is
logical — the max ``clock`` across all claim/tick records — so a claim's
lease (``clock_at_claim + lease_ticks``) expires only as *surviving*
schedulers make progress; wall-clock skew between writers cannot expire a
live lease, and a wedged fleet expires nothing (nothing is making
progress, so nothing can be stolen into the same wedge).

The safety story, in order of authority:

1. **Terminal records are exactly-once in the merge.**  ``records()`` is
   last-wins by cell id and summaries are deterministic, so even a raced
   duplicate terminal record cannot change the merged matrix — but
   :meth:`WorkQueue.record` still refuses to append a terminal record for a
   cell it has already seen terminal, keeping the file clean in practice.
2. **Execution is at-least-once.**  A stolen cell may still be running in
   a zombie owner; both finish, both try to record, rule 1 merges them.
3. **Claims resolve deterministically.**  Two claims for one cell compare
   by ``(gen, clock, worker)`` — see :meth:`ClaimRecord.beats` — so every
   reader of the same bytes agrees on the owner.

A claim carries the cell's portable *spec* (:mod:`repro.serve.jobs`), so a
peer can rebuild the cell without the original submission; the rebuilt
cell's id is verified against the claim before stealing (a corrupt spec is
quarantine-skipped, never silently executed as the wrong cell).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.campaign.manifest import CellRecord, ClaimRecord, Manifest, ManifestScan

from repro.serve.jobs import cell_from_spec

#: a claim is renewed once fewer than this many ticks of lease remain
RENEW_FRACTION = 0.5

#: default lease length in scheduler ticks (at the default 0.5 s tick
#: interval: ~12 s of survivor progress before an orphan is stolen)
DEFAULT_LEASE_TICKS = 24


class WorkQueue:
    """One scheduler's view of the shared manifest work queue."""

    def __init__(
        self,
        manifest: Manifest,
        worker: str,
        lease_ticks: int = DEFAULT_LEASE_TICKS,
    ) -> None:
        if lease_ticks < 1:
            raise ValueError("lease_ticks must be >= 1")
        self.manifest = manifest
        self.worker = worker
        self.lease_ticks = lease_ticks
        self.gen = 0  # assigned at attach()
        self.clock = 0
        #: cell ids this scheduler currently holds a claim on
        self.mine: Set[str] = set()
        #: terminal cell ids seen in any scan or recorded by us
        self.done: Set[str] = set()
        self.stolen_total = 0
        self._last_scan: Optional[ManifestScan] = None

    # ------------------------------------------------------------------
    def attach(self) -> ManifestScan:
        """Join the queue: adopt the file's clock, take a fresh generation.

        The generation is announced immediately via a gen-stamped tick so a
        scheduler that attaches next cannot be handed the same number, even
        before our first claim.  (Two truly simultaneous attaches may still
        tie; claim conflicts then resolve on clock and worker name.)
        """
        scan = self.manifest.scan()
        self.gen = scan.max_gen + 1
        self.clock = scan.clock
        self.done = set(scan.records)
        self._last_scan = scan
        try:
            self.manifest.append_tick(self.worker, self.clock, gen=self.gen)
        except OSError:
            pass  # announcement is an optimization; claims still carry gen
        return scan

    def tick(self) -> None:
        """Advance the logical clock by one and announce it."""
        self.clock += 1
        self.manifest.append_tick(self.worker, self.clock)

    # ------------------------------------------------------------------
    def claim(
        self,
        cell_id: str,
        spec: Optional[dict],
        trace: Optional[str] = None,
    ) -> ClaimRecord:
        """Take (or renew) the lease on one cell.

        ``trace`` is the submission's trace id (:mod:`repro.obs.spans`);
        riding in the claim record, it survives the owner's death — the
        peer that steals the cell reads it back out of the winning claim
        and keeps recording spans under the same trace.
        """
        claim = ClaimRecord(
            cell_id=cell_id,
            worker=self.worker,
            gen=self.gen,
            clock=self.clock,
            lease=self.clock + self.lease_ticks,
            spec=spec,
            trace=trace,
        )
        self.manifest.append_claim(claim)
        self.mine.add(cell_id)
        return claim

    def release(self, cell_id: str) -> None:
        self.mine.discard(cell_id)

    def renewals_due(self, scan: ManifestScan) -> List[str]:
        """Cells we own whose lease has burned past the renewal point."""
        due: List[str] = []
        threshold = self.lease_ticks * RENEW_FRACTION
        for cid in self.mine:
            claim = scan.claims.get(cid)
            if claim is None:
                due.append(cid)  # our claim lost a conflict: reassert
            elif claim.lease - self.clock < threshold:
                due.append(cid)
        return due

    # ------------------------------------------------------------------
    def seed(self, cells: List[Tuple]) -> None:
        """Pre-load the queue with already-expired claims.

        Used to hand a cell list to a fleet of peer schedulers through the
        manifest alone: a ``seed`` claim (generation 0, lease already in the
        past) is immediately stealable by any attached scheduler.  Items are
        ``(cell_id, spec)`` or ``(cell_id, spec, trace)`` tuples.
        """
        for item in cells:
            cell_id, spec, *rest = item
            self.manifest.append_claim(
                ClaimRecord(
                    cell_id=cell_id,
                    worker="seed",
                    gen=0,
                    clock=self.clock,
                    lease=self.clock - 1,
                    spec=spec,
                    trace=rest[0] if rest else None,
                )
            )

    def scan(self) -> ManifestScan:
        """Re-read the shared file; fold peer progress into local state."""
        scan = self.manifest.scan()
        self.clock = max(self.clock, scan.clock)
        self.done |= set(scan.records)
        # a peer outbid one of our claims (e.g. we stalled past our lease
        # and were stolen from): stop treating the cell as ours
        for cid in list(self.mine):
            claim = scan.claims.get(cid)
            if claim is not None and not (
                claim.worker == self.worker and claim.gen == self.gen
            ):
                self.mine.discard(cid)
        self._last_scan = scan
        return scan

    def steals(self, scan: Optional[ManifestScan] = None) -> List[Tuple[str, dict]]:
        """Expired foreign claims whose spec lets us re-run the cell.

        Returns ``(cell_id, spec)`` pairs validated spec-against-id; the
        caller claims each before executing (making the steal visible and
        restarting the lease under our generation).
        """
        scan = self._last_scan if scan is None else scan
        if scan is None:
            scan = self.scan()
        out: List[Tuple[str, dict]] = []
        for cid, claim in scan.claims.items():
            if cid in self.done or cid in self.mine:
                continue
            if claim.worker == self.worker and claim.gen == self.gen:
                continue  # our own live claim
            if claim.lease >= self.clock:
                continue  # lease still running
            if claim.spec is None:
                continue  # not portable: the owner must resume it itself
            try:
                cell = cell_from_spec(claim.spec)
            except Exception:
                continue  # corrupt spec: never execute a guess
            if cell.cell_id != cid:
                continue  # spec does not describe the cell it claims to
            out.append((cid, dict(claim.spec)))
        return out

    # ------------------------------------------------------------------
    def record(self, rec: CellRecord) -> bool:
        """Append a terminal record unless the cell is already terminal.

        Returns True when this call appended the record (we won the merge);
        False when a peer (or a zombie former self) already recorded it.
        Raises ``OSError`` (e.g. ENOSPC) — callers retry until it lands.
        """
        if rec.cell_id in self.done:
            self.release(rec.cell_id)
            return False
        # cheap freshness check: another scheduler may have recorded the
        # cell since our last scan (we only pay this on completion, not
        # per tick)
        latest = self.manifest.scan()
        self.done |= set(latest.records)
        self.clock = max(self.clock, latest.clock)
        if rec.cell_id in self.done:
            self.release(rec.cell_id)
            return False
        self.manifest.append(rec)
        self.done.add(rec.cell_id)
        self.release(rec.cell_id)
        return True
