"""Job bookkeeping for the campaign service: portable cell specs + registry.

The service's unit of admission is a *job* (one client submission of one or
more cells); its unit of execution is the campaign's :class:`Cell`.  Jobs
and cells are deliberately decoupled: two jobs that name the same cell share
one execution (dedupe), and a cell outlives the job that submitted it — its
claim record in the manifest carries the portable *spec* below, so a peer
scheduler that never saw the submission can rebuild and re-run it.

A spec is the JSON-safe subset of a cell that travels over the wire and
into manifest claim records::

    {"workload": "HM1", "scheme": "camps", "refs": 4000, "seed": 1,
     "topology": null, "ber": 0.0, "drop": 0.0, "fault_seed": 0,
     "integrity": false}

It covers exactly what ``repro campaign`` exposes on its command line; cells
with scheme kwargs or trace-config overrides are campaign-API-only and not
servable (they would not round-trip through JSON faithfully).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.campaign.spec import Cell
from repro.experiments.runner import ExperimentConfig

#: job lifecycle states
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_EXPIRED = "expired"

#: cell lifecycle states inside the scheduler (terminal manifest statuses
#: are the campaign's ok/error/timeout; these are the live states before)
CELL_PENDING = "pending"
CELL_RUNNING = "running"
CELL_DONE = "done"
#: diagnosed-terminal integrity failures: recorded, never retried
CELL_QUARANTINED = "quarantined"


class SpecError(ValueError):
    """A submitted cell spec is malformed or names unknown entities."""


def cell_to_spec(cell: Cell) -> dict:
    """Portable JSON projection of a servable cell.

    Raises :class:`SpecError` for cells that cannot round-trip (scheme
    kwargs / trace-config overrides have no wire representation).
    """
    if cell.scheme_kwargs is not None or cell.trace_config is not None:
        raise SpecError(
            f"cell {cell.cell_id} carries scheme_kwargs/trace_config and "
            "cannot be served (no JSON representation)"
        )
    cfg = cell.config
    spec: dict = {
        "workload": cell.workload,
        "scheme": cell.scheme,
        "refs": cfg.refs_per_core,
        "seed": cfg.seed,
    }
    if cell.topology is not None:
        spec["topology"] = cell.topology
    f = cfg.hmc.faults
    if f.enabled:
        spec["ber"] = f.ber
        spec["drop"] = f.drop_prob
        spec["fault_seed"] = f.seed
    if cfg.integrity:
        spec["integrity"] = True
    return spec


def cell_from_spec(spec: Any) -> Cell:
    """Rebuild a cell from its wire/claim spec; validates as it goes.

    The inverse of :func:`cell_to_spec`: ``cell_from_spec(cell_to_spec(c))``
    reproduces ``c.cell_id`` exactly, which is what lets a stealing peer
    verify a claim's spec against the cell id it claims to describe.
    """
    if not isinstance(spec, dict):
        raise SpecError(f"cell spec must be an object, got {type(spec).__name__}")
    from repro.hmc.config import HMCConfig
    from repro.workloads.mixes import mix_names

    workload = spec.get("workload")
    scheme = spec.get("scheme")
    if not isinstance(workload, str) or not isinstance(scheme, str):
        raise SpecError("cell spec needs string 'workload' and 'scheme'")
    if workload not in mix_names():
        raise SpecError(f"unknown workload mix {workload!r}")
    from repro.core.schemes import scheme_names

    if scheme not in scheme_names():
        raise SpecError(f"unknown scheme {scheme!r}")
    try:
        refs = int(spec.get("refs", ExperimentConfig().refs_per_core))
        seed = int(spec.get("seed", 1))
        ber = float(spec.get("ber", 0.0) or 0.0)
        drop = float(spec.get("drop", 0.0) or 0.0)
        fault_seed = int(spec.get("fault_seed", 0))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad numeric field in cell spec: {exc}") from None
    if refs <= 0:
        raise SpecError("refs must be positive")
    topology = spec.get("topology")
    if topology is not None:
        if not isinstance(topology, str):
            raise SpecError("topology must be a string spec like 'chain:4'")
        from repro.fabric.topology import parse_topology

        try:
            parse_topology(topology)
        except ValueError as exc:
            raise SpecError(str(exc)) from None
    hmc = HMCConfig()
    if ber or drop:
        from repro.faults import LinkFaultConfig

        hmc = hmc.with_overrides(
            faults=LinkFaultConfig(ber=ber, drop_prob=drop, seed=fault_seed)
        )
    config = ExperimentConfig(
        refs_per_core=refs,
        seed=seed,
        hmc=hmc,
        integrity=bool(spec.get("integrity", False)),
    )
    return Cell(workload, scheme, config, topology=topology)


@dataclass
class CellState:
    """Live scheduler state of one unique cell (shared across jobs)."""

    cell: Cell
    spec: dict
    lane: str
    status: str = CELL_PENDING
    attempts: int = 0
    crashes: int = 0
    stolen: bool = False
    record: Optional[Any] = None  # CellRecord once terminal
    jobs: Set[str] = field(default_factory=set)
    #: trace id of the submission (or stolen claim) that created this cell
    trace_id: Optional[str] = None
    #: monotonic instant the cell last entered a lane queue (span timing)
    enqueued: Optional[float] = None

    @property
    def cell_id(self) -> str:
        return self.cell.cell_id

    @property
    def terminal(self) -> bool:
        return self.status in (CELL_DONE, CELL_QUARANTINED)


@dataclass
class Job:
    """One client submission: a set of cells plus admission metadata."""

    job_id: str
    cell_ids: List[str]
    lane: str
    submitted: float  # time.monotonic() at admission
    deadline: Optional[float] = None  # monotonic expiry for *queued* cells
    status: str = JOB_QUEUED
    done: Set[str] = field(default_factory=set)
    #: trace id minted (or adopted from ``traceparent``) at admission
    trace_id: Optional[str] = None

    def to_dict(self, cells: Dict[str, CellState]) -> dict:
        results: Dict[str, dict] = {}
        for cid in self.cell_ids:
            state = cells.get(cid)
            if state is None:
                continue
            entry: dict = {"status": state.status, "attempts": state.attempts}
            rec = state.record
            if rec is not None:
                entry["status"] = rec.status
                if rec.summary is not None:
                    entry["summary"] = rec.summary
                if rec.error is not None:
                    entry["error"] = str(rec.error)
                if rec.diagnosis is not None:
                    entry["diagnosis"] = rec.diagnosis
                entry["cached"] = rec.cached
            results[cid] = entry
        out = {
            "job": self.job_id,
            "status": self.status,
            "lane": self.lane,
            "total": len(self.cell_ids),
            "done": len(self.done),
            "cells": results,
        }
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        return out


class JobRegistry:
    """All live jobs plus the shared cell-state table."""

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}
        self.cells: Dict[str, CellState] = {}
        self._ids = itertools.count(1)

    def new_job_id(self) -> str:
        return f"j{next(self._ids)}"

    def add(self, job: Job) -> None:
        self.jobs[job.job_id] = job

    def cell_done(self, cell_id: str) -> List[Job]:
        """Mark one cell terminal in every job referencing it; returns the
        jobs that just completed."""
        finished: List[Job] = []
        state = self.cells.get(cell_id)
        if state is None:
            return finished
        for job_id in state.jobs:
            job = self.jobs.get(job_id)
            if job is None or job.status in (JOB_DONE, JOB_EXPIRED):
                continue
            job.done.add(cell_id)
            job.status = JOB_RUNNING
            if len(job.done) >= len(job.cell_ids):
                job.status = JOB_DONE
                finished.append(job)
        return finished

    def expire_due(self, now: Optional[float] = None) -> List[Job]:
        """Expire jobs past their deadline; returns the newly expired."""
        now = time.monotonic() if now is None else now
        expired: List[Job] = []
        for job in self.jobs.values():
            if (
                job.status in (JOB_QUEUED, JOB_RUNNING)
                and job.deadline is not None
                and now >= job.deadline
            ):
                job.status = JOB_EXPIRED
                expired.append(job)
        return expired

    def live_refs(self, cell_id: str) -> int:
        """How many non-expired jobs still want this cell."""
        state = self.cells.get(cell_id)
        if state is None:
            return 0
        n = 0
        for job_id in state.jobs:
            job = self.jobs.get(job_id)
            if job is not None and job.status in (JOB_QUEUED, JOB_RUNNING):
                n += 1
        return n

    def counts(self) -> Dict[str, int]:
        out = {JOB_QUEUED: 0, JOB_RUNNING: 0, JOB_DONE: 0, JOB_EXPIRED: 0}
        for job in self.jobs.values():
            out[job.status] = out.get(job.status, 0) + 1
        return out
