"""The campaign service: an asyncio front end over the pooled executor.

Two cooperating layers live here:

* :class:`ServeScheduler` — the headless node.  Owns the manifest-backed
  :class:`~repro.serve.steal.WorkQueue`, the persistent
  :class:`~repro.serve.pool.ServePool`, the
  :class:`~repro.serve.admission.AdmissionController`, and the
  :class:`~repro.serve.jobs.JobRegistry`.  Several nodes may share one
  manifest (work stealing); the chaos harness runs nodes with no HTTP
  listener at all.
* :class:`ServeService` — the wire front end: one ``asyncio.start_server``
  socket speaking both HTTP/1.1 (hand-parsed, stdlib only) and raw
  newline-delimited JSON (a connection whose first byte is ``{`` is a JSONL
  session).  Endpooints: ``POST /submit``, ``GET /jobs/<id>``,
  ``/healthz``, ``/readyz``, ``/snapshot``, ``/metrics``, ``POST /drain``.

Degradation ladder (documented in docs/API.md):

1. **healthy** — admitting on both lanes, `/healthz` and `/readyz` 200.
2. **saturated** — a lane budget is full: submissions shed with 429 +
   ``retry_after`` while accepted work drains normally.
3. **draining** — SIGTERM (or ``POST /drain``): `/readyz` flips to 503
   immediately, submissions get 503, in-flight cells finish, the pending
   queue is checkpointed to ``<manifest>.checkpoint.jsonl``, then the
   process exits.  A peer (or a restart with ``resume=True``) picks the
   checkpoint + manifest up with nothing lost.
4. **dead** — no clean exit.  The manifest's claim leases expire under the
   survivors' logical clock and peers steal the orphaned cells.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.campaign.executor import (
    CellRunner,
    cell_report_path,
    execute_cell,
    retry_delay,
    summarize,
)
from repro.campaign.manifest import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellRecord,
    Manifest,
)
from repro.campaign.spec import Cell
from repro.experiments.runner import ResultCache
from repro.obs import telemetry as _telemetry
from repro.obs.spans import (
    STAGE_ADMIT,
    STAGE_CLAIM,
    STAGE_EXECUTE,
    STAGE_MERGE,
    STAGE_QUEUE,
    STAGE_STEAL,
    SpanLog,
    attribution,
    critical_path_text,
    mint_trace_id,
    parse_traceparent,
)
from repro.serve.admission import (
    LANE_BULK,
    LANE_QUICK,
    AdmissionController,
    LatencyTracker,
    infer_lane,
)
from repro.serve.jobs import (
    CELL_DONE,
    CELL_PENDING,
    CELL_QUARANTINED,
    CELL_RUNNING,
    CellState,
    Job,
    JobRegistry,
    SpecError,
    cell_from_spec,
)
from repro.serve.pool import STATUS_CRASH, PoolResult, ServePool
from repro.serve.steal import DEFAULT_LEASE_TICKS, WorkQueue

CHECKPOINT_VERSION = 1


def checkpoint_path(manifest_path: Any) -> str:
    return str(manifest_path) + ".checkpoint.jsonl"


class Saturated(Exception):
    """Submission shed by admission control."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"saturated; retry after {retry_after}s")
        self.retry_after = retry_after


class Draining(Exception):
    """Submission refused because the node is shutting down."""


@dataclass
class ServeConfig:
    """Everything one node needs; shared by `repro serve` and chaos nodes."""

    manifest: str
    jobs: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    resume: bool = False
    retries: int = 1
    timeout: Optional[float] = None
    quick_cap: int = 64
    bulk_cap: int = 256
    lease_ticks: int = DEFAULT_LEASE_TICKS
    tick_interval: float = 0.25
    crash_backoff: float = 0.05  # base for crash-requeue jitter
    drain_grace: float = 30.0  # seconds to let in-flight cells finish
    worker_name: Optional[str] = None  # default: s<pid>
    use_cache: bool = True
    telemetry: bool = True
    telemetry_interval: float = 0.5
    #: headless fleet mode: exit once every claim in the manifest is terminal
    exit_when_complete: bool = False
    start_method: Optional[str] = None
    #: causal span tracing (repro.obs.spans); off = no span records at all
    spans: bool = True
    #: directory for per-cell RunReport artifacts, served by
    #: ``GET /jobs/<id>/report`` and ``/jobs/<id>/dash.html``
    report_dir: Optional[str] = None

    @property
    def name(self) -> str:
        return self.worker_name or f"s{os.getpid()}"


class ServeScheduler:
    """One scheduler node: admission -> claims -> pool -> manifest."""

    def __init__(
        self,
        cfg: ServeConfig,
        runner: CellRunner = execute_cell,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.cfg = cfg
        self.manifest = Manifest(cfg.manifest)
        self.queue = WorkQueue(self.manifest, cfg.name, cfg.lease_ticks)
        self.spans = SpanLog(self.manifest, cfg.name, enabled=cfg.spans)
        if cfg.report_dir is not None and runner is execute_cell:
            # mirror run_campaign: only the default runner understands the
            # report_dir kwarg; custom runners opt in themselves
            os.makedirs(cfg.report_dir, exist_ok=True)
            runner = functools.partial(
                execute_cell, report_dir=str(cfg.report_dir)
            )
        self.registry = JobRegistry()
        self.admission = AdmissionController(
            quick_cap=cfg.quick_cap, bulk_cap=cfg.bulk_cap, jobs=cfg.jobs
        )
        self.latency = LatencyTracker()
        self.cells: Dict[str, CellState] = self.registry.cells
        self.pending: Dict[str, Deque[str]] = {
            LANE_QUICK: deque(),
            LANE_BULK: deque(),
        }
        if cache is not None:
            self.cache = cache
        elif cfg.use_cache:
            from repro.experiments.runner import default_cache

            self.cache = default_cache()
        else:
            self.cache = None
        self.telemetry_dir: Optional[str] = None
        if cfg.telemetry:
            tdir = _telemetry.spool_dir_for(cfg.manifest)
            tdir.mkdir(parents=True, exist_ok=True)
            self.telemetry_dir = str(tdir)
        self.pool = ServePool(
            cfg.jobs,
            runner=runner,
            timeout=cfg.timeout,
            telemetry_dir=self.telemetry_dir,
            telemetry_interval=cfg.telemetry_interval,
            start_method=cfg.start_method,
        )
        self.inflight = 0
        self.completed_cells = 0  # executed (not cached/resumed) terminals
        self.quarantined_total = 0
        self.started_at = time.monotonic()
        self.draining = False
        self.stopped = asyncio.Event()
        self._resume_records: Dict[str, CellRecord] = {}
        self._unrecorded: List[CellRecord] = []
        self._job_events: Dict[str, asyncio.Event] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if self.cfg.resume and self.manifest.path.exists():
            scan = self.queue.attach()
            self._resume_records = dict(scan.records)
        else:
            self.manifest.reset(meta={"jobs": self.cfg.jobs, "serve": True})
            self.queue.attach()
        self._load_checkpoint()
        self.pool.start(self._pool_result_threadsafe)
        self._tick_task = asyncio.create_task(self._run())

    def begin_drain(self) -> None:
        """Flip to draining; idempotent; safe from a signal handler."""
        if self.draining:
            return
        self.draining = True
        if self._loop is not None and self._drain_task is None:
            self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        # let in-flight cells finish (their results still flow through the
        # normal path and land in the manifest), then stop the pump
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.pool.stop(drain=True, timeout=self.cfg.drain_grace)
        )
        self._flush_unrecorded()
        self._write_checkpoint()
        if self._tick_task is not None:
            self._tick_task.cancel()
        self.stopped.set()

    async def aclose(self) -> None:
        """Hard stop (tests): no drain, no checkpoint."""
        if self._tick_task is not None:
            self._tick_task.cancel()
        if self._drain_task is not None:
            await asyncio.gather(self._drain_task, return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.pool.stop(drain=False, timeout=1.0)
        )
        if self.cache is not None:
            try:
                self.cache.flush()
            except OSError:
                pass
        self.stopped.set()

    # ------------------------------------------------------------------
    # Submission path (called from the event loop)
    # ------------------------------------------------------------------
    def submit(
        self,
        specs: List[dict],
        lane: Optional[str] = None,
        deadline_s: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        """Admit one job; raises Saturated/Draining/SpecError.

        ``trace_id`` is the client-supplied trace (already validated by
        :func:`repro.obs.spans.parse_traceparent`); with spans enabled a
        missing one is minted here — the admission point is where the
        causal chain starts.
        """
        t0 = time.perf_counter()
        wall0 = time.time()
        if trace_id is None and self.spans.enabled:
            trace_id = mint_trace_id()
        if self.draining:
            raise Draining("node is draining")
        if not specs:
            raise SpecError("submission carries no cells")
        cells = [cell_from_spec(s) for s in specs]
        if lane is None:
            lanes = {infer_lane(s) for s in specs}
            lane = LANE_BULK if LANE_BULK in lanes else LANE_QUICK
        elif lane not in (LANE_QUICK, LANE_BULK):
            raise SpecError(f"unknown lane {lane!r}")
        # dedupe within the submission, then against live/terminal state
        unique: Dict[str, Tuple[Cell, dict]] = {}
        for cell, spec in zip(cells, specs):
            unique.setdefault(cell.cell_id, (cell, dict(spec)))
        needs_slot = [
            cid
            for cid in unique
            if cid not in self.cells and not self._resolvable(unique[cid][0])
        ]
        verdict = self.admission.try_admit(lane, len(needs_slot))
        if verdict is not None:
            raise Saturated(verdict)
        job = Job(
            job_id=self.registry.new_job_id(),
            cell_ids=list(unique),
            lane=lane,
            submitted=time.monotonic(),
            deadline=(
                time.monotonic() + deadline_s if deadline_s is not None else None
            ),
            trace_id=trace_id,
        )
        self.registry.add(job)
        self._job_events[job.job_id] = asyncio.Event()
        for cid, (cell, spec) in unique.items():
            state = self.cells.get(cid)
            if state is None:
                state = self.cells[cid] = CellState(
                    cell=cell, spec=spec, lane=lane, trace_id=trace_id
                )
                resolved = self._try_resolve(state)
                if not resolved:
                    state.enqueued = time.monotonic()
                    self.pending[lane].append(cid)
            elif state.trace_id is None:
                state.trace_id = trace_id
            state.jobs.add(job.job_id)
            if state.terminal:
                job.done.add(cid)
        if len(job.done) >= len(job.cell_ids):
            job.status = "done"
            self._job_events[job.job_id].set()
        elapsed = time.perf_counter() - t0
        self.latency.observe(elapsed)
        self.spans.record(
            STAGE_ADMIT,
            trace_id,
            wall0,
            elapsed,
            job=job.job_id,
            lane=lane,
            cells=len(unique),
        )
        self._dispatch()
        out = {
            "job": job.job_id,
            "status": job.status,
            "lane": lane,
            "cells": list(unique),
        }
        if trace_id is not None:
            out["trace"] = trace_id
        return out

    def _resolvable(self, cell: Cell) -> bool:
        """True when the cell will be satisfied without queue capacity."""
        rec = self._resume_records.get(cell.cell_id)
        if rec is not None and (rec.ok or rec.diagnosis is not None):
            return True
        if self.cache is not None and cell.cacheable:
            key = cell.config.cache_key(cell.workload, cell.scheme)
            return self.cache.get(key) is not None
        return False

    def _try_resolve(self, state: CellState) -> bool:
        """Satisfy a new cell from the manifest (resume) or ResultCache."""
        rec = self._resume_records.get(state.cell_id)
        if rec is not None and (rec.ok or rec.diagnosis is not None):
            state.record = rec
            state.status = (
                CELL_QUARANTINED if rec.diagnosis is not None else CELL_DONE
            )
            self.queue.done.add(state.cell_id)
            return True
        if self.cache is not None and state.cell.cacheable:
            key = state.cell.config.cache_key(
                state.cell.workload, state.cell.scheme
            )
            hit = self.cache.get(key)
            if hit is not None:
                rec = CellRecord(
                    cell_id=state.cell_id,
                    workload=state.cell.workload,
                    scheme=state.cell.scheme,
                    status=STATUS_OK,
                    attempts=0,
                    elapsed=0.0,
                    summary=summarize(hit),
                    cached=True,
                )
                self._finish(state, rec, executed=False)
                return True
        return False

    # ------------------------------------------------------------------
    # Dispatch / results
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Move pending cells into the pool: quick lane first, bounded by
        pool width (claimed-but-queued cells would just burn lease)."""
        if self.draining:
            return
        while self.inflight < self.cfg.jobs:
            cid = self._pop_pending()
            if cid is None:
                return
            state = self.cells.get(cid)
            if state is None or state.terminal:
                continue
            self._launch(state, state.attempts + 1)

    def _pop_pending(self) -> Optional[str]:
        for lane in (LANE_QUICK, LANE_BULK):
            q = self.pending[lane]
            while q:
                cid = q.popleft()
                state = self.cells.get(cid)
                if state is None or state.status != CELL_PENDING:
                    continue
                if state.jobs and self.registry.live_refs(cid) == 0:
                    # every job wanting this cell expired while it queued
                    self.admission.release(lane)
                    continue
                self.admission.release(lane)
                return cid
        return None

    def _launch(self, state: CellState, attempt: int) -> None:
        if state.enqueued is not None:
            age = max(0.0, time.monotonic() - state.enqueued)
            state.enqueued = None
            self.admission.observe_queue_age(state.lane, age)
            self.spans.record(
                STAGE_QUEUE,
                state.trace_id,
                time.time() - age,
                age,
                cell_id=state.cell_id,
                lane=state.lane,
            )
        claim_wall = time.time()
        claim_t0 = time.perf_counter()
        try:
            self.queue.claim(state.cell_id, state.spec, trace=state.trace_id)
        except OSError:
            # claim did not land (e.g. ENOSPC): run anyway — claims are an
            # optimization for peers; the terminal record is what matters
            pass
        else:
            self.spans.record(
                STAGE_CLAIM,
                state.trace_id,
                claim_wall,
                time.perf_counter() - claim_t0,
                cell_id=state.cell_id,
                gen=self.queue.gen,
                clock=self.queue.clock,
            )
        state.status = CELL_RUNNING
        state.attempts = attempt
        self.inflight += 1
        self.pool.submit(state.cell, attempt)

    def _pool_result_threadsafe(self, res: PoolResult) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._on_result, res)

    def _on_result(self, res: PoolResult) -> None:
        self.inflight = max(0, self.inflight - 1)
        state = self.cells.get(res.cell.cell_id)
        if state is None or state.terminal:
            self._dispatch()  # zombie result for a stolen/finished cell
            return
        self.spans.record(
            STAGE_EXECUTE,
            state.trace_id,
            time.time() - max(0.0, res.elapsed),
            res.elapsed,
            cell_id=state.cell_id,
            status=res.status,
            attempt=res.attempt,
            **({"slot": res.worker} if res.worker else {}),
        )
        if res.status == STATUS_OK:
            self._finish(
                state,
                CellRecord(
                    cell_id=state.cell_id,
                    workload=state.cell.workload,
                    scheme=state.cell.scheme,
                    status=STATUS_OK,
                    attempts=res.attempt,
                    elapsed=res.elapsed,
                    summary=res.payload,
                ),
                executed=True,
            )
        elif res.status == STATUS_CRASH:
            # infrastructure death, not a cell verdict: always re-run, with
            # deterministic jitter so a mass worker death cannot stampede
            state.crashes += 1
            self._requeue_later(
                state,
                retry_delay(
                    state.cell_id,
                    state.crashes,
                    self.cfg.crash_backoff,
                    cap=2.0,
                ),
            )
        elif res.status == STATUS_TIMEOUT:
            self._finish(
                state,
                CellRecord(
                    cell_id=state.cell_id,
                    workload=state.cell.workload,
                    scheme=state.cell.scheme,
                    status=STATUS_TIMEOUT,
                    attempts=res.attempt,
                    elapsed=res.elapsed,
                    error=str(res.payload),
                ),
                executed=True,
            )
        else:  # STATUS_ERROR
            diagnosis = None
            error_text = res.payload
            if isinstance(res.payload, dict):
                diagnosis = res.payload.get("diagnosis")
                error_text = res.payload.get("error", "")
            if diagnosis is not None:
                # diagnosed integrity failure: deterministic, quarantine it
                self.quarantined_total += 1
                self._finish(
                    state,
                    CellRecord(
                        cell_id=state.cell_id,
                        workload=state.cell.workload,
                        scheme=state.cell.scheme,
                        status=STATUS_ERROR,
                        attempts=res.attempt,
                        elapsed=res.elapsed,
                        error=str(error_text).strip(),
                        diagnosis=diagnosis,
                    ),
                    executed=True,
                    quarantine=True,
                )
            elif res.attempt <= self.cfg.retries:
                self._requeue_later(
                    state,
                    retry_delay(state.cell_id, res.attempt, self.cfg.crash_backoff),
                )
            else:
                self._finish(
                    state,
                    CellRecord(
                        cell_id=state.cell_id,
                        workload=state.cell.workload,
                        scheme=state.cell.scheme,
                        status=STATUS_ERROR,
                        attempts=res.attempt,
                        elapsed=res.elapsed,
                        error=str(error_text).strip(),
                    ),
                    executed=True,
                )
        self._dispatch()

    def _requeue_later(self, state: CellState, delay: float) -> None:
        state.status = CELL_PENDING
        if self._loop is None or self.draining:
            return  # draining: stays pending, lands in the checkpoint

        def _again() -> None:
            if state.terminal or state.status != CELL_PENDING or self.draining:
                return
            if self.inflight < self.cfg.jobs:
                self._launch(state, state.attempts + 1)
            else:
                state.enqueued = time.monotonic()
                self.pending[state.lane].appendleft(state.cell_id)
                self.admission.queued[state.lane] += 1

        self._loop.call_later(delay, _again)

    def _finish(
        self,
        state: CellState,
        rec: CellRecord,
        executed: bool,
        quarantine: bool = False,
    ) -> None:
        if (
            executed
            and rec.ok
            and rec.report is None
            and self.cfg.report_dir is not None
        ):
            report = cell_report_path(self.cfg.report_dir, rec.cell_id)
            if report.exists():
                rec.report = str(report)
        merge_wall = time.time()
        merge_t0 = time.perf_counter()
        try:
            self.queue.record(rec)
        except OSError:
            # full disk mid-merge: keep the record in memory and retry the
            # append every tick until the write lands
            self._unrecorded.append(rec)
            self.queue.release(rec.cell_id)
        if executed:
            self.spans.record(
                STAGE_MERGE,
                state.trace_id,
                merge_wall,
                time.perf_counter() - merge_t0,
                cell_id=state.cell_id,
                status=rec.status,
            )
        state.record = rec
        state.status = CELL_QUARANTINED if quarantine else CELL_DONE
        if executed:
            self.completed_cells += 1
            if rec.ok:
                self.admission.observe_cell_seconds(rec.elapsed, lane=state.lane)
        if (
            rec.ok
            and not rec.cached
            and self.cache is not None
            and state.cell.cacheable
        ):
            key = state.cell.config.cache_key(
                state.cell.workload, state.cell.scheme
            )
            from repro.system import SimulationResult

            self.cache.put(key, SimulationResult(extra={}, **rec.summary))
            try:
                self.cache.flush()
            except OSError:
                pass
        for job in self.registry.cell_done(state.cell_id):
            event = self._job_events.get(job.job_id)
            if event is not None:
                event.set()

    def _flush_unrecorded(self) -> None:
        still: List[CellRecord] = []
        for rec in self._unrecorded:
            try:
                self.manifest.append(rec)
                self.queue.done.add(rec.cell_id)
            except OSError:
                still.append(rec)
        self._unrecorded = still

    # ------------------------------------------------------------------
    # Tick loop: clock, renewals, stealing, expiry
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.cfg.tick_interval)
            try:
                self._tick_cycle()
            except asyncio.CancelledError:  # pragma: no cover
                raise
            except Exception:  # pragma: no cover - the loop must survive
                pass
            if self.cfg.exit_when_complete and self._complete():
                self.begin_drain()
                return

    def _tick_cycle(self) -> None:
        try:
            self.queue.tick()
        except OSError:
            pass  # ticks are disposable; a full disk only slows stealing
        try:
            scan = self.queue.scan()
        except OSError:
            return
        self._absorb_peer_records(scan)
        self._flush_unrecorded()
        # renew leases on cells we are actively running
        for cid in self.queue.renewals_due(scan):
            state = self.cells.get(cid)
            if state is not None and state.status == CELL_RUNNING:
                try:
                    # carry the trace on renewals too, or a death after a
                    # renewal would strand the stolen cell off its trace
                    self.queue.claim(cid, state.spec, trace=state.trace_id)
                except OSError:
                    pass
            else:
                self.queue.release(cid)
        # steal expired orphans (admission-exempt: already admitted once)
        if not self.draining:
            for cid, spec in self.queue.steals(scan):
                if self.inflight >= self.cfg.jobs * 2:
                    break  # bounded theft: leave the rest for other peers
                claim = scan.claims.get(cid)
                trace = claim.trace if claim is not None else None
                state = self.cells.get(cid)
                if state is None:
                    try:
                        cell = cell_from_spec(spec)
                    except SpecError:
                        continue
                    state = self.cells[cid] = CellState(
                        cell=cell,
                        spec=spec,
                        lane=infer_lane(spec),
                        trace_id=trace,
                    )
                if state.status != CELL_PENDING or state.terminal:
                    continue
                if state.trace_id is None:
                    # adopt the trace riding in the dead owner's claim: the
                    # stolen cell stays on the submission's causal chain
                    state.trace_id = trace
                state.stolen = True
                self.queue.stolen_total += 1
                self.spans.record(
                    STAGE_STEAL,
                    state.trace_id,
                    time.time(),
                    0.0,
                    cell_id=cid,
                    **(
                        {"from_worker": claim.worker, "from_gen": claim.gen}
                        if claim is not None
                        else {}
                    ),
                )
                self._launch(state, state.attempts + 1)
        # job deadlines: queued cells of expired jobs stop occupying lanes
        for job in self.registry.expire_due():
            event = self._job_events.get(job.job_id)
            if event is not None:
                event.set()
        self._dispatch()

    def _absorb_peer_records(self, scan: Any) -> None:
        """Fold terminal records written by peers into local cell state."""
        for cid, rec in scan.records.items():
            state = self.cells.get(cid)
            if state is None or state.terminal:
                continue
            if state.status == CELL_PENDING:
                # a peer finished it first: drop our queued copy
                try:
                    self.pending[state.lane].remove(cid)
                    self.admission.release(state.lane)
                except ValueError:
                    pass
            self._finish(state, rec, executed=False)

    def _complete(self) -> bool:
        scan = self.queue._last_scan
        if scan is None:
            return False
        claims = set(scan.claims)
        if not claims:
            return False
        return (
            claims <= self.queue.done
            and self.inflight == 0
            and not any(self.pending.values())
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _write_checkpoint(self) -> None:
        path = checkpoint_path(self.cfg.manifest)
        pending = [
            {"kind": "pending", "cell_id": s.cell_id, "spec": s.spec,
             "lane": s.lane, "attempts": s.attempts,
             **({"trace": s.trace_id} if s.trace_id is not None else {})}
            for s in self.cells.values()
            if not s.terminal
        ]
        jobs = [
            {"kind": "job", "job": j.job_id, "cells": j.cell_ids,
             "lane": j.lane, "status": j.status}
            for j in self.registry.jobs.values()
        ]
        if not pending and not jobs:
            try:
                os.remove(path)
            except OSError:
                pass
            return
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as fh:
                fh.write(
                    json.dumps(
                        {
                            "kind": "checkpoint",
                            "version": CHECKPOINT_VERSION,
                            "worker": self.cfg.name,
                            "ts": time.time(),
                        }
                    )
                    + "\n"
                )
                for row in pending + jobs:
                    fh.write(json.dumps(row) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - checkpoint is best-effort;
            pass  # the manifest claims still allow stealing

    def _load_checkpoint(self) -> None:
        path = checkpoint_path(self.cfg.manifest)
        if not self.cfg.resume or not os.path.exists(path):
            return
        try:
            lines = open(path).read().splitlines()
        except OSError:
            return
        for line in lines:
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(raw, dict) or raw.get("kind") != "pending":
                continue
            spec = raw.get("spec")
            cid = raw.get("cell_id")
            if not isinstance(spec, dict) or not isinstance(cid, str):
                continue
            if cid in self.queue.done or cid in self.cells:
                continue
            try:
                cell = cell_from_spec(spec)
            except SpecError:
                continue
            if cell.cell_id != cid:
                continue
            lane = raw.get("lane") if raw.get("lane") in self.pending else LANE_BULK
            trace = raw.get("trace")
            state = self.cells[cid] = CellState(
                cell=cell,
                spec=spec,
                lane=lane,
                trace_id=trace if isinstance(trace, str) else None,
            )
            if not self._try_resolve(state):
                state.enqueued = time.monotonic()
                self.pending[lane].append(cid)
                self.admission.queued[lane] += 1
        try:
            os.remove(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def serve_stats(self) -> dict:
        p99 = self.latency.quantile(0.99)
        return {
            "worker": self.cfg.name,
            "gen": self.queue.gen,
            "clock": self.queue.clock,
            "draining": self.draining,
            "inflight": self.inflight,
            "pending": {lane: len(q) for lane, q in self.pending.items()},
            "jobs": self.registry.counts(),
            "admission": self.admission.snapshot(),
            "stolen_total": self.queue.stolen_total,
            "quarantined_total": self.quarantined_total,
            "completed_cells": self.completed_cells,
            "unrecorded": len(self._unrecorded),
            "admission_p99_seconds": p99,
            "spans": self.spans.snapshot(),
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
        }

    def job_info(self, job: Job) -> dict:
        """Job status plus span-derived per-stage wall-clock attribution."""
        out = job.to_dict(self.cells)
        for cid, entry in out["cells"].items():
            stages = self.spans.by_cell.get(cid)
            if stages:
                entry["stages"] = {k: round(v, 6) for k, v in stages.items()}
        totals = self.spans.stage_totals(job.cell_ids)
        fracs = attribution(totals)
        if fracs:
            out["stages"] = {k: round(v, 6) for k, v in totals.items()}
            out["critical_path"] = fracs
            out["critical_path_text"] = critical_path_text(fracs)
        return out

    def job_report_paths(self, job: Job) -> Dict[str, str]:
        """cell_id -> on-disk RunReport path for cells that wrote one."""
        out: Dict[str, str] = {}
        for cid in job.cell_ids:
            state = self.cells.get(cid)
            rec = state.record if state is not None else None
            path = rec.report if rec is not None else None
            if path is None and self.cfg.report_dir is not None:
                candidate = cell_report_path(self.cfg.report_dir, cid)
                if candidate.exists():
                    path = str(candidate)
            if path is not None and os.path.exists(path):
                out[cid] = path
        return out

    def job_reports(self, job: Job) -> dict:
        """The job's RunReport artifacts as one JSON payload (wire form)."""
        reports: Dict[str, Any] = {}
        for cid, path in self.job_report_paths(job).items():
            try:
                with open(path) as fh:
                    reports[cid] = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
        return {
            "job": job.job_id,
            "report_dir": self.cfg.report_dir,
            "reports": reports,
        }

    def job_dash(self, job: Job) -> str:
        """The run-report dashboard for this job, rendered server-side."""
        from repro.obs.html import render_html
        from repro.obs.report import RunReport

        reports = []
        for _cid, path in sorted(self.job_report_paths(job).items()):
            try:
                reports.append(RunReport.load(path))
            except Exception:
                continue
        return render_html(reports, title=f"repro serve job {job.job_id}")

    def snapshot(self) -> dict:
        if self.telemetry_dir is not None:
            if not hasattr(self, "_aggregator"):
                self._aggregator = _telemetry.TelemetryAggregator(
                    self.telemetry_dir, manifest_path=self.cfg.manifest
                )
            snap = self._aggregator.refresh().to_snapshot()
        else:
            snap = {
                "version": _telemetry.TELEMETRY_VERSION,
                "ts": time.time(),
                "campaign": {},
                "manifest": {},
                "workers": [],
                "failures": [],
            }
        snap["serve"] = self.serve_stats()
        return snap


# ----------------------------------------------------------------------
# Wire front end
# ----------------------------------------------------------------------

_MAX_BODY = 8 * 1024 * 1024


class ServeService:
    """HTTP + JSONL listener bound to one :class:`ServeScheduler`."""

    def __init__(
        self,
        cfg: ServeConfig,
        runner: CellRunner = execute_cell,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.cfg = cfg
        self.node = ServeScheduler(cfg, runner=runner, cache=cache)
        self._server: Optional[asyncio.AbstractServer] = None
        self.port = cfg.port

    async def start(self) -> "ServeService":
        await self.node.start()
        self._server = await asyncio.start_server(
            self._handle, self.cfg.host, self.cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def url(self) -> str:
        return f"http://{self.cfg.host}:{self.port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.node.aclose()

    async def drain_and_stop(self) -> None:
        self.node.begin_drain()
        await self.node.stopped.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.node.cache is not None:
            try:
                self.node.cache.flush()
            except OSError:
                pass

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.lstrip().startswith(b"{"):
                await self._jsonl_session(first, reader, writer)
            else:
                await self._http_request(first, reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # dropped client mid-stream: admitted work continues
        except Exception:  # pragma: no cover - handler must never kill loop
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- JSONL protocol ------------------------------------------------
    async def _jsonl_session(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        line = first
        while line:
            try:
                reply = await self._jsonl_op(line)
            except Exception as exc:
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()

    async def _jsonl_op(self, line: bytes) -> dict:
        try:
            req = json.loads(line)
        except json.JSONDecodeError:
            return {"ok": False, "error": "unparseable JSON line"}
        if not isinstance(req, dict):
            return {"ok": False, "error": "request must be an object"}
        op = req.get("op")
        node = self.node
        if op == "ping":
            return {"ok": True, "pong": True, "draining": node.draining}
        if op == "submit":
            try:
                out = node.submit(
                    _expand_cells(req),
                    lane=req.get("lane"),
                    deadline_s=req.get("deadline_s"),
                    trace_id=parse_traceparent(req.get("traceparent")),
                )
            except Saturated as exc:
                return {
                    "ok": False,
                    "error": "saturated",
                    "retry_after": exc.retry_after,
                }
            except Draining:
                return {"ok": False, "error": "draining"}
            except SpecError as exc:
                return {"ok": False, "error": str(exc)}
            return {"ok": True, **out}
        if op == "status":
            job = node.registry.jobs.get(str(req.get("job")))
            if job is None:
                return {"ok": False, "error": "unknown job"}
            return {"ok": True, **node.job_info(job)}
        if op == "wait":
            job_id = str(req.get("job"))
            job = node.registry.jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": "unknown job"}
            event = node._job_events.get(job_id)
            timeout = req.get("timeout")
            if event is not None and job.status in ("queued", "running"):
                try:
                    await asyncio.wait_for(
                        event.wait(),
                        timeout=float(timeout) if timeout is not None else None,
                    )
                except asyncio.TimeoutError:
                    return {
                        "ok": False,
                        "error": "timeout",
                        **node.job_info(job),
                    }
            return {"ok": True, **node.job_info(job)}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- HTTP protocol -------------------------------------------------
    async def _http_request(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await _respond(writer, 400, {"error": "malformed request line"})
            return
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" in line:
                key, _, value = line.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                await _respond(writer, 400, {"error": "bad Content-Length"})
                return
            if n > _MAX_BODY:
                await _respond(writer, 413, {"error": "body too large"})
                return
            if n:
                body = await reader.readexactly(n)
        path = target.split("?", 1)[0]
        await self._route(writer, method, path, body, headers)

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        node = self.node
        if method == "GET" and path == "/healthz":
            if node.draining:
                await _respond(writer, 503, {"status": "draining"})
            else:
                await _respond(writer, 200, {"status": "ok"})
            return
        if method == "GET" and path == "/readyz":
            if node.draining:
                await _respond(writer, 503, {"ready": False, "reason": "draining"})
            else:
                await _respond(writer, 200, {"ready": True})
            return
        if method == "GET" and path == "/snapshot":
            await _respond(writer, 200, node.snapshot())
            return
        if method == "GET" and path == "/metrics":
            from repro.obs.promtext import render_metrics

            text = render_metrics(node.snapshot())
            await _respond(
                writer,
                200,
                text.encode(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/") :]
            tail = ""
            for suffix in ("/report", "/dash.html"):
                if rest.endswith(suffix):
                    rest, tail = rest[: -len(suffix)], suffix
                    break
            job = node.registry.jobs.get(rest)
            if job is None:
                await _respond(writer, 404, {"error": "unknown job"})
                return
            if tail == "/report":
                await _respond(writer, 200, node.job_reports(job))
            elif tail == "/dash.html":
                await _respond(
                    writer,
                    200,
                    node.job_dash(job).encode(),
                    content_type="text/html; charset=utf-8",
                )
            else:
                await _respond(writer, 200, node.job_info(job))
            return
        if method == "POST" and path == "/submit":
            try:
                req = json.loads(body or b"{}")
                if not isinstance(req, dict):
                    raise SpecError("submission body must be a JSON object")
                out = node.submit(
                    _expand_cells(req),
                    lane=req.get("lane"),
                    deadline_s=req.get("deadline_s"),
                    trace_id=parse_traceparent(
                        (headers or {}).get("traceparent")
                        or req.get("traceparent")
                    ),
                )
            except Saturated as exc:
                await _respond(
                    writer,
                    429,
                    {"error": "saturated", "retry_after": exc.retry_after},
                    headers={"Retry-After": str(exc.retry_after)},
                )
                return
            except Draining:
                await _respond(writer, 503, {"error": "draining"})
                return
            except (SpecError, json.JSONDecodeError) as exc:
                await _respond(writer, 400, {"error": str(exc)})
                return
            await _respond(writer, 202, out)
            return
        if method == "POST" and path == "/drain":
            node.begin_drain()
            await _respond(writer, 202, {"draining": True})
            return
        await _respond(writer, 404, {"error": f"no route {method} {path}"})


def _expand_cells(req: dict) -> List[dict]:
    """Cells from a submission body: explicit list and/or a grid shorthand.

    ``{"grid": {"mixes": [...], "schemes": [...], "refs": N, ...}}`` expands
    workload-major, matching ``repro campaign`` cell order.
    """
    specs: List[dict] = []
    cells = req.get("cells")
    if cells is not None:
        if not isinstance(cells, list):
            raise SpecError("'cells' must be a list of cell specs")
        specs.extend(c for c in cells if isinstance(c, dict))
        if len(specs) != len(cells):
            raise SpecError("every cell spec must be an object")
    grid = req.get("grid")
    if grid is not None:
        if not isinstance(grid, dict):
            raise SpecError("'grid' must be an object")
        mixes = grid.get("mixes")
        schemes = grid.get("schemes")
        if not isinstance(mixes, list) or not isinstance(schemes, list):
            raise SpecError("'grid' needs 'mixes' and 'schemes' lists")
        base = {
            k: v
            for k, v in grid.items()
            if k in ("refs", "seed", "topology", "ber", "drop", "fault_seed",
                     "integrity")
        }
        topologies = grid.get("topologies")
        if topologies is not None and not isinstance(topologies, list):
            raise SpecError("'topologies' must be a list")
        for topo in topologies or [base.get("topology")]:
            for w in mixes:
                for s in schemes:
                    spec = dict(base)
                    spec["workload"] = w
                    spec["scheme"] = s
                    if topo is not None:
                        spec["topology"] = topo
                    specs.append(spec)
    if not specs:
        raise SpecError("submission carries no cells")
    return specs


async def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
) -> None:
    reason = {
        200: "OK",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        413: "Payload Too Large",
        429: "Too Many Requests",
        503: "Service Unavailable",
    }.get(status, "OK")
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for key, value in (headers or {}).items():
        head.append(f"{key}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking entry points (CLI / chaos nodes)
# ----------------------------------------------------------------------


async def _serve_async(
    cfg: ServeConfig,
    runner: CellRunner = execute_cell,
    announce: bool = True,
) -> int:
    import signal as _signal

    service = ServeService(cfg, runner=runner)
    await service.start()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(_signal.SIGTERM, service.node.begin_drain)
        loop.add_signal_handler(_signal.SIGINT, service.node.begin_drain)
    except (NotImplementedError, RuntimeError):  # pragma: no cover
        pass
    if announce:
        print(
            f"serve: listening on {service.url} "
            f"(manifest {cfg.manifest}, {cfg.jobs} workers, "
            f"gen {service.node.queue.gen})",
            flush=True,
        )
    await service.node.stopped.wait()
    if service._server is not None:
        service._server.close()
        await service._server.wait_closed()
    if service.node.cache is not None:
        try:
            service.node.cache.flush()
        except OSError:
            pass
    if announce:
        print("serve: drained and stopped", flush=True)
    return 0


def run_serve(cfg: ServeConfig, runner: CellRunner = execute_cell) -> int:
    """Blocking service entry: runs until SIGTERM (or /drain) completes."""
    try:
        return asyncio.run(_serve_async(cfg, runner=runner))
    except KeyboardInterrupt:  # pragma: no cover
        return 130
