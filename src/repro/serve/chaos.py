"""Chaos primitives for the campaign service, plus a headless node entry.

Every primitive here injects exactly one failure shape the service claims to
survive; the chaos suite (``tests/test_serve_chaos.py``) composes them and
asserts convergence — zero lost cells, zero double-merged cells, and a
merged matrix digest byte-identical to an undisturbed serial run.

Injectors
---------
* :func:`kill_worker` / :func:`kill_random_worker` — SIGKILL a pool worker
  mid-cell (the executor's crash containment + the scheduler's requeue).
* :func:`kill_process` — SIGKILL an entire scheduler node (work stealing:
  survivors expire the orphan leases and re-run the cells).
* :func:`tear_manifest` — append a torn (no-newline, truncated JSON) line,
  as a crash mid-append would leave.
* :func:`duplicate_manifest_lines` — re-append existing records verbatim
  (multi-writer races, replayed NFS writes); last-wins merge must hold.
* :func:`enospc_manifest` — make a manifest's appends raise ``ENOSPC`` for
  the next N calls (a context manager; in-process nodes only).
* :func:`drop_connection` — open a socket to the service, send a partial
  request, and vanish.

Headless node mode
------------------
``python -m repro.serve.chaos node <manifest> ...`` runs a
:class:`~repro.serve.server.ServeScheduler` with no HTTP listener against
an existing manifest until every seeded/claimed cell is terminal.  The
chaos tests launch a small fleet of these against one manifest and kill
them at random; ``seed`` mode writes the initial expired claims that make
the manifest itself the work queue.
"""

from __future__ import annotations

import argparse
import errno
import json
import os
import random
import signal
import socket
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from repro.campaign.manifest import Manifest


# ----------------------------------------------------------------------
# Process-level injectors
# ----------------------------------------------------------------------


def kill_worker(pid: int) -> bool:
    """SIGKILL one worker process; True if the signal was delivered."""
    try:
        os.kill(pid, signal.SIGKILL)
        return True
    except (ProcessLookupError, PermissionError):
        return False


def kill_random_worker(pids: Sequence[int], rng: random.Random) -> Optional[int]:
    """SIGKILL one of ``pids`` chosen by ``rng``; returns the victim."""
    live = [p for p in pids if p]
    if not live:
        return None
    victim = rng.choice(live)
    return victim if kill_worker(victim) else None


def kill_process(pid: int) -> bool:
    """SIGKILL a whole scheduler node (no drain, no checkpoint)."""
    return kill_worker(pid)


# ----------------------------------------------------------------------
# Manifest corruption
# ----------------------------------------------------------------------


def tear_manifest(path: str, rng: Optional[random.Random] = None) -> str:
    """Append a torn line — a crash mid-append.  Returns the torn text."""
    rng = rng or random.Random(0)
    victims = [
        '{"kind":"claim","cell_id":"torn","worker":"t","gen":9,"clo',
        '{"cell_id":"torn-cell","workload":"HM1","sch',
        '{"kind":"tick","worker":"t","clo',
    ]
    torn = rng.choice(victims)
    with open(path, "a") as fh:
        fh.write(torn)  # no newline: exactly what a crash leaves behind
    return torn


def heal_torn_line(path: str) -> None:
    """Terminate a torn trailing line so later appends stay parseable.

    The manifest writers already do this themselves before every append
    (``Manifest._append_line`` checks the file tail), so this helper only
    matters for readers that want a clean file without writing a record.
    Either way the tear stays confined to the crashed writer's own line:
    the reader skips it, and the at-least-once execution layer re-runs
    whatever that record would have retired.
    """
    with open(path, "a") as fh:
        fh.write("\n")


def duplicate_manifest_lines(
    path: str, rng: random.Random, count: int = 2
) -> int:
    """Re-append up to ``count`` random existing complete lines verbatim."""
    try:
        lines = [
            ln
            for ln in open(path).read().splitlines()
            if ln.strip() and not ln.startswith('{"kind": "header"')
        ]
    except OSError:
        return 0
    if not lines:
        return 0
    picked = [rng.choice(lines) for _ in range(count)]
    with open(path, "a") as fh:
        for ln in picked:
            fh.write(ln + "\n")
    return len(picked)


@contextmanager
def enospc_manifest(manifest: Manifest, failures: int = 3) -> Iterator[List[int]]:
    """Make the next ``failures`` appends on this manifest raise ENOSPC.

    Yields a single-element list whose value counts the failures actually
    injected (so a test can assert the fault path really fired).
    """
    remaining = [failures]
    fired = [0]
    real = manifest._append_line

    def flaky(payload: dict, durable: bool) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            fired[0] += 1
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        real(payload, durable)

    manifest._append_line = flaky  # type: ignore[method-assign]
    try:
        yield fired
    finally:
        manifest._append_line = real  # type: ignore[method-assign]


# ----------------------------------------------------------------------
# Network chaos
# ----------------------------------------------------------------------


def drop_connection(host: str, port: int, payload: bytes = b"POST /submit HTTP/1.1\r\nContent-Length: 9999\r\n\r\n{\"cells\"") -> None:
    """Open a connection, send a partial request, and hang up."""
    try:
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(payload)
            # abortive close: RST instead of FIN, the rudest disconnect
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )
    except OSError:
        pass


# ----------------------------------------------------------------------
# Headless fleet node (subprocess entry)
# ----------------------------------------------------------------------


def seed_manifest(manifest_path: str, specs: List[dict], reset: bool = True) -> int:
    """Write expired seed claims for every spec; the manifest becomes the
    fleet's work queue.  Returns the number of cells seeded.

    Each seed claim carries a fresh trace id, so the span timeline of a
    fleet run connects from seeding through every steal and re-execution.
    """
    from repro.obs.spans import mint_trace_id
    from repro.serve.jobs import cell_from_spec
    from repro.serve.steal import WorkQueue

    manifest = Manifest(manifest_path)
    if reset or not manifest.path.exists():
        manifest.reset(meta={"serve": True, "seeded": len(specs)})
    queue = WorkQueue(manifest, "seed")
    queue.attach()
    triples = []
    for spec in specs:
        cell = cell_from_spec(spec)
        triples.append((cell.cell_id, spec, mint_trace_id()))
    queue.seed(triples)
    return len(triples)


def run_node(
    manifest_path: str,
    jobs: int = 1,
    name: Optional[str] = None,
    tick_interval: float = 0.1,
    lease_ticks: int = 20,
    use_cache: bool = False,
) -> int:
    """Run one headless scheduler until the shared queue is complete."""
    from repro.serve.server import ServeConfig, ServeScheduler

    async def _main() -> int:
        import asyncio

        cfg = ServeConfig(
            manifest=manifest_path,
            jobs=jobs,
            resume=True,
            worker_name=name,
            tick_interval=tick_interval,
            lease_ticks=lease_ticks,
            use_cache=use_cache,
            telemetry=True,
            exit_when_complete=True,
        )
        node = ServeScheduler(cfg)
        await node.start()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, node.begin_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        await node.stopped.wait()
        return 0

    import asyncio

    return asyncio.run(_main())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.chaos",
        description="chaos-harness helpers: headless nodes and fault injectors",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_node = sub.add_parser("node", help="run a headless work-stealing node")
    p_node.add_argument("manifest")
    p_node.add_argument("--jobs", type=int, default=1)
    p_node.add_argument("--name", default=None)
    p_node.add_argument("--tick-interval", type=float, default=0.1)
    p_node.add_argument("--lease-ticks", type=int, default=20)
    p_seed = sub.add_parser("seed", help="seed a manifest with cell claims")
    p_seed.add_argument("manifest")
    p_seed.add_argument("specs", help="JSON list of cell specs (or '-' for stdin)")
    args = parser.parse_args(argv)
    if args.cmd == "node":
        return run_node(
            args.manifest,
            jobs=args.jobs,
            name=args.name,
            tick_interval=args.tick_interval,
            lease_ticks=args.lease_ticks,
        )
    if args.cmd == "seed":
        raw = sys.stdin.read() if args.specs == "-" else args.specs
        specs = json.loads(raw)
        n = seed_manifest(args.manifest, specs)
        print(f"seeded {n} cells into {args.manifest}")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
