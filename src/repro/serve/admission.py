"""Admission control: bounded lanes, load shedding, and retry hints.

The service never queues unboundedly.  Each *lane* has a fixed budget of
queued cells; a submission that would overflow its lane is shed with an HTTP
429 plus a ``retry_after`` hint sized from the lane's **live queue-age p99**
(the time recently dispatched cells actually sat queued) — the client backs
off for roughly what the backlog is currently costing, not a blind constant.
Until the lane has dispatched anything, the hint degrades to the older
estimate: backlog × per-cell service-time EMA ÷ pool width.

Two lanes ship by default:

* ``quick`` — cheap probes (small single-cube cells).  Dispatched with
  strict priority so an interactive digest check is never starved behind a
  fabric grid.
* ``bulk``  — everything else: fabric topologies, large ``refs`` counts,
  fault-injection sweeps.

Starvation of ``bulk`` is bounded by lane budgets, not by time-slicing:
``quick`` admits at most ``quick_cap`` queued cells, so bulk progress stalls
only while a real interactive burst is in flight.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

LANE_QUICK = "quick"
LANE_BULK = "bulk"
LANES = (LANE_QUICK, LANE_BULK)

#: refs/core at or above which a single-cube cell counts as bulk work
BULK_REFS_THRESHOLD = 20_000

#: bounds on the retry hint handed to shed clients
MIN_RETRY_AFTER = 0.5
MAX_RETRY_AFTER = 60.0

#: assumed per-cell seconds before the first completion calibrates the EMA
DEFAULT_CELL_SECONDS = 2.0

#: log-spaced seconds bounds shared by the queue-age and service-time
#: histograms (and their Prometheus exposition); +Inf is implicit
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def nearest_rank(q: float, n: int) -> int:
    """Index of the nearest-rank ``q``-quantile in a sorted list of ``n``.

    The textbook definition — ``ceil(q * n)`` as a 1-based rank — clamped
    into range, so ``q=0`` is the minimum, ``q=1.0`` the maximum, and
    ``q=0.5`` at ``n=2`` picks the first element (rank 1), never rounding
    everything down the way a bare ``int(q * n)`` index does.
    """
    if n <= 0:
        raise ValueError("nearest_rank needs n >= 1")
    return min(n - 1, max(0, math.ceil(q * n) - 1))


def infer_lane(spec: dict) -> str:
    """Classify one wire spec into a lane (client override wins upstream)."""
    if spec.get("topology"):
        return LANE_BULK
    try:
        refs = int(spec.get("refs", 0))
    except (TypeError, ValueError):
        return LANE_BULK
    if refs >= BULK_REFS_THRESHOLD:
        return LANE_BULK
    if spec.get("ber") or spec.get("drop"):
        return LANE_BULK
    return LANE_QUICK


class LogHistogram:
    """Fixed log-bucket histogram of seconds, Prometheus-shaped.

    Observations are O(log buckets); quantiles come back as the upper bound
    of the bucket the rank lands in (clamped to the true observed max, so a
    single 0.3 s sample reports 0.3 s, not the 0.5 s bucket edge).  The
    bucket layout matches the rendered ``_bucket{le=...}`` exposition
    exactly, so a scrape and a local quantile agree on what they counted.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        b = tuple(float(x) for x in bounds)
        if not b or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self.counts[bisect_right(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> Optional[float]:
        """Upper-bound estimate of the ``q``-quantile, or None when empty."""
        if self.count == 0:
            return None
        rank = nearest_rank(q, self.count)
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running > rank:
                upper = (
                    self.bounds[i] if i < len(self.bounds) else float("inf")
                )
                return min(upper, self.max)
        return self.max  # unreachable: running reaches count

    def snapshot(self) -> dict:
        """Cumulative Prometheus-style view: buckets, count, sum, max."""
        buckets = []
        running = 0
        for i, bound in enumerate(self.bounds):
            running += self.counts[i]
            buckets.append({"le": bound, "count": running})
        buckets.append({"le": float("inf"), "count": self.count})
        return {
            "buckets": buckets,
            "count": self.count,
            "sum": round(self.sum, 6),
            "max": round(self.max, 6),
        }


@dataclass
class AdmissionController:
    """Bounded per-lane budgets plus live latency histograms for hints."""

    quick_cap: int = 64
    bulk_cap: int = 256
    jobs: int = 1  # pool width, for backlog-drain estimates
    queued: Dict[str, int] = field(
        default_factory=lambda: {LANE_QUICK: 0, LANE_BULK: 0}
    )
    shed_total: int = 0
    admitted_cells: int = 0
    _ema_cell_seconds: Optional[float] = None
    #: per-lane time-spent-queued before dispatch (drives retry_after)
    queue_age: Dict[str, LogHistogram] = field(
        default_factory=lambda: {lane: LogHistogram() for lane in LANES}
    )
    #: per-lane wall time of completed cell executions
    service_time: Dict[str, LogHistogram] = field(
        default_factory=lambda: {lane: LogHistogram() for lane in LANES}
    )

    def cap(self, lane: str) -> int:
        return self.quick_cap if lane == LANE_QUICK else self.bulk_cap

    @property
    def cell_seconds(self) -> float:
        return (
            self._ema_cell_seconds
            if self._ema_cell_seconds is not None
            else DEFAULT_CELL_SECONDS
        )

    # -- lifecycle of one admitted cell --------------------------------
    def try_admit(self, lane: str, n_cells: int) -> Optional[float]:
        """Admit ``n_cells`` into ``lane``; ``None`` on success, else the
        ``retry_after`` seconds to hand back with the 429."""
        if lane not in self.queued:
            lane = LANE_BULK
        if self.queued[lane] + n_cells > self.cap(lane):
            self.shed_total += 1
            return self.retry_after(lane)
        self.queued[lane] += n_cells
        self.admitted_cells += n_cells
        return None

    def release(self, lane: str, n_cells: int = 1) -> None:
        """A queued cell left the lane (dispatched, expired, or deduped)."""
        if lane in self.queued:
            self.queued[lane] = max(0, self.queued[lane] - n_cells)

    def observe_queue_age(self, lane: str, seconds: float) -> None:
        """One cell left its lane for a worker after ``seconds`` queued."""
        self.queue_age.get(lane, self.queue_age[LANE_BULK]).observe(seconds)

    def observe_cell_seconds(
        self, elapsed: float, lane: Optional[str] = None
    ) -> None:
        """Fold one completed cell's wall time into the EMA + histogram."""
        if elapsed <= 0:
            return
        if self._ema_cell_seconds is None:
            self._ema_cell_seconds = elapsed
        else:
            self._ema_cell_seconds += 0.2 * (elapsed - self._ema_cell_seconds)
        if lane is not None:
            self.service_time.get(
                lane, self.service_time[LANE_BULK]
            ).observe(elapsed)

    def retry_after(self, lane: Optional[str] = None) -> float:
        """Seconds a shed client should back off before retrying.

        Primary signal: the lane's live queue-age p99 — what recently
        dispatched cells actually waited.  Before the lane has dispatched
        anything (cold start, or spans of pure shedding) it degrades to the
        old estimate: backlog × service-time EMA ÷ pool width.
        """
        est: Optional[float] = None
        if lane is not None and lane in self.queue_age:
            est = self.queue_age[lane].quantile(0.99)
        if est is None:
            backlog = sum(self.queued.values())
            est = (backlog + 1) * self.cell_seconds / max(1, self.jobs)
        return round(min(MAX_RETRY_AFTER, max(MIN_RETRY_AFTER, est)), 2)

    def snapshot(self) -> dict:
        return {
            "queued": dict(self.queued),
            "caps": {LANE_QUICK: self.quick_cap, LANE_BULK: self.bulk_cap},
            "shed_total": self.shed_total,
            "admitted_cells": self.admitted_cells,
            "cell_seconds": round(self.cell_seconds, 4),
            "retry_after": {
                lane: self.retry_after(lane) for lane in self.queued
            },
            "queue_age": {
                lane: h.snapshot() for lane, h in self.queue_age.items()
            },
            "service_time": {
                lane: h.snapshot() for lane, h in self.service_time.items()
            },
        }


@dataclass
class LatencyTracker:
    """Exact quantiles over a sliding window of recent admission latencies.

    A bounded ring (``deque(maxlen=...)``): once full, each new sample
    evicts the oldest, so the p99 tracks *recent* traffic instead of
    freezing on whatever the first 10 k warm-up submissions looked like.
    """

    max_samples: int = 10_000
    samples: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.samples.maxlen != self.max_samples:
            self.samples = deque(self.samples, maxlen=self.max_samples)

    def observe(self, seconds: float) -> None:
        self.samples.append(seconds)

    def quantile(self, q: float) -> Optional[float]:
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        return ordered[nearest_rank(q, len(ordered))]


def wall() -> float:
    return time.monotonic()
