"""Admission control: bounded lanes, load shedding, and retry hints.

The service never queues unboundedly.  Each *lane* has a fixed budget of
queued cells; a submission that would overflow its lane is shed with an HTTP
429 plus a ``retry_after`` hint sized from the measured per-cell service
time — the client backs off for roughly one drain of the current backlog
rather than a blind constant.

Two lanes ship by default:

* ``quick`` — cheap probes (small single-cube cells).  Dispatched with
  strict priority so an interactive digest check is never starved behind a
  fabric grid.
* ``bulk``  — everything else: fabric topologies, large ``refs`` counts,
  fault-injection sweeps.

Starvation of ``bulk`` is bounded by lane budgets, not by time-slicing:
``quick`` admits at most ``quick_cap`` queued cells, so bulk progress stalls
only while a real interactive burst is in flight.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

LANE_QUICK = "quick"
LANE_BULK = "bulk"
LANES = (LANE_QUICK, LANE_BULK)

#: refs/core at or above which a single-cube cell counts as bulk work
BULK_REFS_THRESHOLD = 20_000

#: bounds on the retry hint handed to shed clients
MIN_RETRY_AFTER = 0.5
MAX_RETRY_AFTER = 60.0

#: assumed per-cell seconds before the first completion calibrates the EMA
DEFAULT_CELL_SECONDS = 2.0


def infer_lane(spec: dict) -> str:
    """Classify one wire spec into a lane (client override wins upstream)."""
    if spec.get("topology"):
        return LANE_BULK
    try:
        refs = int(spec.get("refs", 0))
    except (TypeError, ValueError):
        return LANE_BULK
    if refs >= BULK_REFS_THRESHOLD:
        return LANE_BULK
    if spec.get("ber") or spec.get("drop"):
        return LANE_BULK
    return LANE_QUICK


@dataclass
class AdmissionController:
    """Bounded per-lane budgets plus a service-time EMA for retry hints."""

    quick_cap: int = 64
    bulk_cap: int = 256
    jobs: int = 1  # pool width, for backlog-drain estimates
    queued: Dict[str, int] = field(
        default_factory=lambda: {LANE_QUICK: 0, LANE_BULK: 0}
    )
    shed_total: int = 0
    admitted_cells: int = 0
    _ema_cell_seconds: Optional[float] = None

    def cap(self, lane: str) -> int:
        return self.quick_cap if lane == LANE_QUICK else self.bulk_cap

    @property
    def cell_seconds(self) -> float:
        return (
            self._ema_cell_seconds
            if self._ema_cell_seconds is not None
            else DEFAULT_CELL_SECONDS
        )

    # -- lifecycle of one admitted cell --------------------------------
    def try_admit(self, lane: str, n_cells: int) -> Optional[float]:
        """Admit ``n_cells`` into ``lane``; ``None`` on success, else the
        ``retry_after`` seconds to hand back with the 429."""
        if lane not in self.queued:
            lane = LANE_BULK
        if self.queued[lane] + n_cells > self.cap(lane):
            self.shed_total += 1
            return self.retry_after()
        self.queued[lane] += n_cells
        self.admitted_cells += n_cells
        return None

    def release(self, lane: str, n_cells: int = 1) -> None:
        """A queued cell left the lane (dispatched, expired, or deduped)."""
        if lane in self.queued:
            self.queued[lane] = max(0, self.queued[lane] - n_cells)

    def observe_cell_seconds(self, elapsed: float) -> None:
        """Fold one completed cell's wall time into the service-time EMA."""
        if elapsed <= 0:
            return
        if self._ema_cell_seconds is None:
            self._ema_cell_seconds = elapsed
        else:
            self._ema_cell_seconds += 0.2 * (elapsed - self._ema_cell_seconds)

    def retry_after(self) -> float:
        """Seconds until the current backlog plausibly drains one slot."""
        backlog = sum(self.queued.values())
        est = (backlog + 1) * self.cell_seconds / max(1, self.jobs)
        return round(min(MAX_RETRY_AFTER, max(MIN_RETRY_AFTER, est)), 2)

    def snapshot(self) -> dict:
        return {
            "queued": dict(self.queued),
            "caps": {LANE_QUICK: self.quick_cap, LANE_BULK: self.bulk_cap},
            "shed_total": self.shed_total,
            "admitted_cells": self.admitted_cells,
            "cell_seconds": round(self.cell_seconds, 4),
        }


@dataclass
class LatencyTracker:
    """Reservoir-free admission-latency quantiles (small N, exact)."""

    samples: list = field(default_factory=list)
    max_samples: int = 10_000

    def observe(self, seconds: float) -> None:
        if len(self.samples) < self.max_samples:
            self.samples.append(seconds)

    def quantile(self, q: float) -> Optional[float]:
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[idx]


def wall() -> float:
    return time.monotonic()
