"""Persistent worker pool for the service: the executor's workers, unending.

:func:`repro.campaign.executor.run_campaign` drives a *finite* cell list and
tears its pool down at the end; the service needs the same process workers
(isolation, per-attempt timeouts, crash containment) attached to an
*unbounded* stream of cells.  :class:`ServePool` wraps the executor's
:class:`~repro.campaign.executor._Worker` slots in a pump thread:

* cells come in through a thread-safe inbox (:meth:`submit`);
* results leave through an ``on_result`` callback fired from the pump
  thread — the asyncio scheduler hands in a callback that trampolines onto
  its event loop via ``loop.call_soon_threadsafe``;
* a worker that dies mid-cell surfaces the cell as status ``crash`` (the
  scheduler decides whether to requeue; crashes are infrastructure
  failures, not cell verdicts) and the slot respawns lazily;
* an attempt that overruns its deadline is killed and surfaced as
  ``timeout`` (terminal: a deterministic simulator that hung once will
  hang again).

Chaos hooks: :meth:`worker_pids` exposes the live worker processes so the
chaos harness can SIGKILL one mid-cell, and :meth:`kill_workers` forces the
abrupt-death path during drain testing.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, List, Optional, Tuple

import multiprocessing

from repro.campaign.executor import (
    CellRunner,
    TelemetrySpec,
    _default_start_method,
    _Worker,
    execute_cell,
)
from repro.campaign.manifest import STATUS_ERROR, STATUS_OK, STATUS_TIMEOUT
from repro.campaign.spec import Cell

#: pool-level result status for a worker that died mid-cell (not a manifest
#: status: the scheduler maps it to a retry or a terminal error)
STATUS_CRASH = "crash"


@dataclass
class PoolResult:
    """One attempt's outcome as surfaced to the scheduler."""

    cell: Cell
    attempt: int
    status: str  # ok | error | timeout | crash
    payload: Any  # summary dict, error text, or {"error","diagnosis"}
    elapsed: float
    worker: Optional[str] = None  # pool slot name ("w0", ...) for tracing


class ServePool:
    """A fixed-width pool of persistent cell workers fed by a queue."""

    def __init__(
        self,
        jobs: int,
        runner: CellRunner = execute_cell,
        timeout: Optional[float] = None,
        telemetry_dir: Optional[str] = None,
        telemetry_interval: float = 0.5,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.runner = runner
        self.timeout = timeout
        self.telemetry_dir = telemetry_dir
        self.telemetry_interval = telemetry_interval
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._inbox: "queue.Queue[Optional[Tuple[Cell, int]]]" = queue.Queue()
        self._on_result: Optional[Callable[[PoolResult], None]] = None
        self._workers: List[Optional[_Worker]] = [None] * jobs
        self._stop = threading.Event()
        self._drain = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self, on_result: Callable[[PoolResult], None]) -> "ServePool":
        self._on_result = on_result
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-pool", daemon=True
        )
        self._thread.start()
        return self

    def submit(self, cell: Cell, attempt: int) -> None:
        self._idle.clear()
        self._inbox.put((cell, attempt))

    @property
    def queued(self) -> int:
        return self._inbox.qsize()

    def worker_pids(self) -> List[int]:
        """PIDs of live workers (chaos targets); racy by nature."""
        with self._lock:
            return [
                w.proc.pid
                for w in self._workers
                if w is not None and w.alive and w.proc.pid is not None
            ]

    def busy_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers if w is not None and w.busy)

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no cell is queued or in flight (drain barrier)."""
        return self._idle.wait(timeout)

    # ------------------------------------------------------------------
    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pump; with ``drain``, let in-flight cells finish first."""
        if drain:
            self._drain.set()
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if self._idle.wait(timeout=0.1):
                    break
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(5.0, timeout))
            self._thread = None
        with self._lock:
            for i, w in enumerate(self._workers):
                if w is not None:
                    w.shutdown()
                    self._workers[i] = None

    def kill_workers(self) -> None:
        """Abruptly kill every live worker (chaos/emergency path)."""
        with self._lock:
            for w in self._workers:
                if w is not None:
                    w.kill()

    # ------------------------------------------------------------------
    def _telemetry(self, slot: int) -> Optional[TelemetrySpec]:
        if self.telemetry_dir is None:
            return None
        return (self.telemetry_dir, f"w{slot}", self.telemetry_interval)

    def _emit(self, result: PoolResult) -> None:
        cb = self._on_result
        if cb is None:
            return
        try:
            cb(result)
        except Exception:  # pragma: no cover - scheduler bug must not
            pass  # wedge the pump

    def _spawn(self, slot: int) -> Optional[_Worker]:
        try:
            w = _Worker(self._ctx, self.runner, telemetry=self._telemetry(slot))
        except OSError:  # pragma: no cover - fork failure under pressure
            return None
        with self._lock:
            self._workers[slot] = w
        return w

    def _loop(self) -> None:  # noqa: C901 - one pump, states inline
        backlog: List[Tuple[Cell, int]] = []
        while not self._stop.is_set():
            # pull everything currently queued into the local backlog
            try:
                while True:
                    item = self._inbox.get_nowait()
                    if item is not None:
                        backlog.append(item)
            except queue.Empty:
                pass
            # surface crashed workers and respawn lazily
            for i, w in enumerate(self._workers):
                if w is None or w.alive:
                    continue
                if w.busy:
                    cell, attempt = w.take_task()
                    self._emit(
                        PoolResult(
                            cell,
                            attempt,
                            STATUS_CRASH,
                            f"worker process died (exitcode {w.proc.exitcode})",
                            0.0,
                            worker=f"w{i}",
                        )
                    )
                w.kill()
                with self._lock:
                    self._workers[i] = None
            # assign backlog to free slots (unless draining the pool)
            if backlog and not self._drain.is_set():
                for i, w in enumerate(self._workers):
                    if not backlog:
                        break
                    if w is None:
                        w = self._spawn(i)
                        if w is None:
                            continue
                    if w.busy or not w.alive:
                        continue
                    cell, attempt = backlog.pop(0)
                    try:
                        w.assign(cell, attempt, self.timeout)
                    except (BrokenPipeError, OSError):
                        backlog.insert(0, (cell, attempt))
            busy = [
                w for w in self._workers if w is not None and w.busy and w.alive
            ]
            if not busy and (not backlog or self._drain.is_set()):
                # draining: in-flight work is done; the untouched backlog is
                # the scheduler's to checkpoint, not ours to hold idle open
                self._idle.set()
            if not busy:
                # nothing in flight: sleep on the inbox instead of spinning
                try:
                    item = self._inbox.get(timeout=0.1)
                except queue.Empty:
                    continue
                if item is not None:
                    backlog.append(item)
                continue
            now = time.monotonic()
            wait_for = 0.2
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            if deadlines:
                wait_for = min(wait_for, max(0.0, min(deadlines) - now))
            ready = connection.wait([w.conn for w in busy], timeout=wait_for)
            for w in busy:
                if w.conn in ready:
                    slot = f"w{self._workers.index(w)}"
                    cell, attempt = w.take_task()
                    try:
                        status, payload, elapsed = w.conn.recv()
                    except (EOFError, OSError):
                        status, payload, elapsed = (
                            STATUS_CRASH,
                            f"worker process died (exitcode {w.proc.exitcode})",
                            0.0,
                        )
                    self._emit(
                        PoolResult(
                            cell, attempt, status, payload, elapsed, worker=slot
                        )
                    )
            now = time.monotonic()
            for i, w in enumerate(self._workers):
                if (
                    w is not None
                    and w.busy
                    and w.deadline is not None
                    and now >= w.deadline
                ):
                    cell, attempt = w.take_task()
                    w.kill()
                    self._emit(
                        PoolResult(
                            cell,
                            attempt,
                            STATUS_TIMEOUT,
                            f"cell exceeded {self.timeout:g}s wall-clock",
                            float(self.timeout or 0.0),
                            worker=f"w{i}",
                        )
                    )


__all__ = [
    "PoolResult",
    "ServePool",
    "STATUS_CRASH",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
]
