"""``repro.serve``: the crash-tolerant campaign service.

A long-running asyncio job server over the pooled campaign executor:
admission-controlled bounded queues with priority lanes and 429 load
shedding, a lease-based work-stealing queue layered onto the campaign
manifest, graceful SIGTERM drain with queue checkpointing, and the chaos
harness that proves all of it (:mod:`repro.serve.chaos`).

Quickstart::

    repro serve --manifest svc.jsonl --port 9200 --jobs 4   # terminal 1
    repro submit --url http://127.0.0.1:9200 --mixes HM1 \\
        --schemes base,camps --wait                          # terminal 2
    repro monitor svc.jsonl                                  # terminal 3

See ``docs/API.md`` ("Service mode") for the wire protocol, lease
semantics, and the degradation ladder.
"""

from repro.serve.admission import (
    LANE_BULK,
    LANE_QUICK,
    AdmissionController,
    LatencyTracker,
    LogHistogram,
    infer_lane,
    nearest_rank,
)
from repro.serve.client import (
    DrainingError,
    LoadGenerator,
    ServeClient,
    ServeError,
    Shed,
)
from repro.serve.jobs import (
    CellState,
    Job,
    JobRegistry,
    SpecError,
    cell_from_spec,
    cell_to_spec,
)
from repro.serve.pool import PoolResult, ServePool, STATUS_CRASH
from repro.serve.server import (
    Draining,
    Saturated,
    ServeConfig,
    ServeScheduler,
    ServeService,
    checkpoint_path,
    run_serve,
)
from repro.serve.steal import DEFAULT_LEASE_TICKS, WorkQueue

__all__ = [
    "AdmissionController",
    "CellState",
    "DEFAULT_LEASE_TICKS",
    "Draining",
    "DrainingError",
    "Job",
    "JobRegistry",
    "LANE_BULK",
    "LANE_QUICK",
    "LatencyTracker",
    "LoadGenerator",
    "LogHistogram",
    "PoolResult",
    "STATUS_CRASH",
    "Saturated",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServePool",
    "ServeScheduler",
    "ServeService",
    "Shed",
    "SpecError",
    "WorkQueue",
    "cell_from_spec",
    "cell_to_spec",
    "checkpoint_path",
    "infer_lane",
    "nearest_rank",
    "run_serve",
]
