"""Blocking client for the campaign service, plus a load generator.

:class:`ServeClient` speaks the HTTP side of the protocol with stdlib
``http.client`` — one connection per request, so it needs no pooling and
survives a server drain mid-session.  :class:`LoadGenerator` drives
saturation experiments: N threads submitting jobs as fast as admission
allows, recording per-submit latency and shed (429) counts for
``benchmarks/bench_serve_saturation.py``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.admission import nearest_rank


class ServeError(RuntimeError):
    """Protocol-level failure talking to the service."""


class Shed(ServeError):
    """The service answered 429; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"shed by admission control (retry in {retry_after}s)")
        self.retry_after = retry_after


class DrainingError(ServeError):
    """The service answered 503: draining, submit elsewhere."""


class ServeClient:
    """Minimal blocking client: submit, poll, wait, inspect."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> tuple:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            all_headers = dict(headers or {})
            if body:
                all_headers.setdefault("Content-Type", "application/json")
            conn.request(method, path, body=body, headers=all_headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"raw": raw.decode("latin-1", "replace")}
            return resp.status, data
        finally:
            conn.close()

    # -- API -----------------------------------------------------------
    def submit(
        self,
        cells: Optional[List[dict]] = None,
        grid: Optional[dict] = None,
        lane: Optional[str] = None,
        deadline_s: Optional[float] = None,
        traceparent: Optional[str] = None,
    ) -> dict:
        payload: Dict[str, Any] = {}
        if cells:
            payload["cells"] = cells
        if grid:
            payload["grid"] = grid
        if lane:
            payload["lane"] = lane
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        headers = {"traceparent": traceparent} if traceparent else None
        status, data = self._request("POST", "/submit", payload, headers=headers)
        if status == 429:
            raise Shed(float(data.get("retry_after", 1.0)))
        if status == 503:
            raise DrainingError(str(data.get("error", "draining")))
        if status != 202:
            raise ServeError(f"submit failed ({status}): {data}")
        return data

    def job(self, job_id: str) -> dict:
        status, data = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise ServeError(f"job lookup failed ({status}): {data}")
        return data

    def job_report(self, job_id: str) -> dict:
        """The job's RunReport artifacts streamed over the wire."""
        status, data = self._request("GET", f"/jobs/{job_id}/report")
        if status != 200:
            raise ServeError(f"job report failed ({status}): {data}")
        return data

    def job_dash(self, job_id: str) -> str:
        """The job's HTML dashboard, rendered by the server."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/dash.html")
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServeError(f"job dash failed ({resp.status})")
            return resp.read().decode()
        finally:
            conn.close()

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.25
    ) -> dict:
        """Poll until the job leaves queued/running (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            info = self.job(job_id)
            if info.get("status") not in ("queued", "running"):
                return info
            if time.monotonic() >= deadline:
                raise ServeError(f"job {job_id} still {info.get('status')}")
            time.sleep(poll)

    def healthz(self) -> tuple:
        return self._request("GET", "/healthz")

    def readyz(self) -> tuple:
        return self._request("GET", "/readyz")

    def snapshot(self) -> dict:
        status, data = self._request("GET", "/snapshot")
        if status != 200:
            raise ServeError(f"snapshot failed ({status})")
        return data

    def metrics_text(self) -> str:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServeError(f"metrics failed ({resp.status})")
            return resp.read().decode()
        finally:
            conn.close()

    def drain(self) -> None:
        self._request("POST", "/drain")


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------


@dataclass
class LoadStats:
    """What one load run measured (all times in seconds)."""

    submitted_jobs: int = 0
    accepted_jobs: int = 0
    shed: int = 0
    errors: int = 0
    latencies: List[float] = field(default_factory=list)
    retry_afters: List[float] = field(default_factory=list)

    def latency_quantile(self, q: float) -> Optional[float]:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        return ordered[nearest_rank(q, len(ordered))]

    def to_dict(self) -> dict:
        return {
            "submitted_jobs": self.submitted_jobs,
            "accepted_jobs": self.accepted_jobs,
            "shed": self.shed,
            "errors": self.errors,
            "p50_submit_seconds": self.latency_quantile(0.50),
            "p99_submit_seconds": self.latency_quantile(0.99),
            "max_submit_seconds": max(self.latencies) if self.latencies else None,
            "mean_retry_after": (
                sum(self.retry_afters) / len(self.retry_afters)
                if self.retry_afters
                else None
            ),
        }


class LoadGenerator:
    """Hammer one service with jobs from N client threads.

    Each thread submits ``spec_fn(i)`` jobs back to back; a 429 counts as a
    shed (and the thread briefly yields — a saturation benchmark wants the
    server's shedding behavior, not a tight client spin).  Latency is the
    full submit round trip, which is exactly the admission latency a real
    client observes.
    """

    def __init__(
        self,
        client_fn: Any,  # () -> ServeClient (per-thread instances)
        spec_fn: Any,  # (i: int) -> dict submit payload kwargs
        threads: int = 4,
        jobs_per_thread: int = 10,
        shed_backoff: float = 0.05,
    ) -> None:
        self.client_fn = client_fn
        self.spec_fn = spec_fn
        self.threads = threads
        self.jobs_per_thread = jobs_per_thread
        self.shed_backoff = shed_backoff
        self.stats = LoadStats()
        self.accepted_ids: List[str] = []
        self._lock = threading.Lock()

    def _worker(self, tid: int) -> None:
        client = self.client_fn()
        for i in range(self.jobs_per_thread):
            payload = self.spec_fn(tid * self.jobs_per_thread + i)
            t0 = time.perf_counter()
            try:
                out = client.submit(**payload)
                dt = time.perf_counter() - t0
                with self._lock:
                    self.stats.submitted_jobs += 1
                    self.stats.accepted_jobs += 1
                    self.stats.latencies.append(dt)
                    self.accepted_ids.append(out["job"])
            except Shed as exc:
                with self._lock:
                    self.stats.submitted_jobs += 1
                    self.stats.shed += 1
                    self.stats.retry_afters.append(exc.retry_after)
                time.sleep(self.shed_backoff)
            except ServeError:
                with self._lock:
                    self.stats.submitted_jobs += 1
                    self.stats.errors += 1

    def run(self) -> LoadStats:
        threads = [
            threading.Thread(target=self._worker, args=(t,), daemon=True)
            for t in range(self.threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return self.stats
