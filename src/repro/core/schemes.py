"""Name -> factory registry for the evaluated prefetching schemes.

The five schemes of the paper's Figure 5 plus the no-prefetch control:

======== =============================================================
name      scheme
======== =============================================================
none      plain HMC, no prefetch buffer (control, not in the paper)
base      whole-row prefetch on every access, LRU buffer
base-hit  whole-row prefetch on >= 2 read-queue hits, LRU buffer
mmd       dynamic-degree memory-side prefetcher [8], LRU buffer
camps     conflict-aware prefetching, LRU buffer
camps-mod conflict-aware prefetching, utilization+recency buffer
camps-fdp camps-mod + feedback throttling of the CT trigger (extension)
======== =============================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.baselines import BaseHitPrefetcher, BasePrefetcher, MMDPrefetcher
from repro.core.camps import CampsPrefetcher
from repro.core.extensions import ThrottledCampsPrefetcher
from repro.core.prefetcher import NullPrefetcher, Prefetcher
from repro.hmc.config import HMCConfig

SchemeFactory = Callable[..., Prefetcher]

SCHEMES: Dict[str, SchemeFactory] = {
    "none": NullPrefetcher,
    "base": BasePrefetcher,
    "base-hit": BaseHitPrefetcher,
    "mmd": MMDPrefetcher,
    "camps": lambda vault_id, config, **kw: CampsPrefetcher(
        vault_id, config, modified=False, **kw
    ),
    "camps-mod": lambda vault_id, config, **kw: CampsPrefetcher(
        vault_id, config, modified=True, **kw
    ),
    "camps-fdp": ThrottledCampsPrefetcher,
}

#: The five schemes compared in the paper's figures, in plot order.
PAPER_SCHEMES: List[str] = ["base", "base-hit", "mmd", "camps", "camps-mod"]


def scheme_names() -> List[str]:
    """All registered scheme names (deterministic order)."""
    return list(SCHEMES.keys())


def make_prefetcher(
    name: str, vault_id: int, config: HMCConfig, **kwargs: Any
) -> Prefetcher:
    """Instantiate a prefetcher by registry name.

    Extra ``kwargs`` flow to the scheme constructor (e.g. ``params=`` for
    CAMPS ablations).
    """
    try:
        factory = SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; available: {', '.join(SCHEMES)}"
        ) from None
    return factory(vault_id, config, **kwargs)
