"""The two profiling tables that drive CAMPS prefetch decisions.

Row Utilization Table (RUT)
    One entry per bank (16 per vault).  Tracks the row currently open in that
    bank's row buffer and which distinct cache lines of it have been served.
    When the distinct-line count reaches the threshold (4 in the paper), the
    row is a high-utilization prefetch candidate.

Conflict Table (CT)
    32 fully-associative entries per vault, shared by all banks, LRU-managed.
    Holds (bank, row) identities of rows recently closed by a conflicting
    activation.  A newly activated row already present in the CT has been
    conflicted on twice in a short window - the paper's signal that it is a
    conflict-prone row worth prefetching.

Both tables cost 20 bits/entry in the paper (3.75 KB total over 32 vaults);
here they are small dicts with explicit capacity and LRU order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(slots=True)
class RUTEntry:
    """Utilization state of the row open in one bank."""

    row: int
    line_mask: int = 0  # bit per distinct cache line served
    accesses: int = 0  # raw request count (paper's counter wording)
    opened_at: int = 0

    @property
    def distinct_lines(self) -> int:
        return self.line_mask.bit_count()


class RowUtilizationTable:
    """Per-bank utilization tracking for open rows.

    ``count_distinct`` selects the threshold metric: the paper defines
    utilization as *distinct* cache lines accessed but describes the counter
    as incrementing per served request; distinct counting is the default and
    the raw counter is kept for the ablation bench.
    """

    def __init__(self, banks: int, count_distinct: bool = True) -> None:
        if banks < 1:
            raise ValueError("banks must be >= 1")
        self.banks = banks
        self.count_distinct = count_distinct
        self._entries: list[Optional[RUTEntry]] = [None] * banks

    def get(self, bank: int) -> Optional[RUTEntry]:
        return self._entries[bank]

    def record_access(self, bank: int, row: int, column: int, now: int) -> int:
        """Record one served request to the open row; creates the entry on
        first touch.  Returns the current utilization metric for the row."""
        e = self._entries[bank]
        if e is None or e.row != row:
            e = RUTEntry(row=row, opened_at=now)
            self._entries[bank] = e
        e.line_mask |= 1 << column
        e.accesses += 1
        # distinct_lines inlined (property frame + popcount showed up in
        # the hot-loop profile at one call per served request)
        return e.line_mask.bit_count() if self.count_distinct else e.accesses

    def utilization(self, bank: int) -> int:
        e = self._entries[bank]
        if e is None:
            return 0
        return e.distinct_lines if self.count_distinct else e.accesses

    def replace(self, bank: int, row: int, now: int) -> Optional[RUTEntry]:
        """A different row was activated in ``bank``: install a fresh entry
        and return the displaced one (which the caller moves to the CT)."""
        old = self._entries[bank]
        self._entries[bank] = RUTEntry(row=row, opened_at=now)
        if old is not None and old.row == row:
            # Same row re-activated (e.g. after an explicit precharge); the
            # old utilization is stale but there was no conflict to record.
            return None
        return old

    def clear(self, bank: int) -> None:
        """Drop the entry (the row was prefetched and the bank precharged)."""
        self._entries[bank] = None

    def occupied(self) -> int:
        return sum(1 for e in self._entries if e is not None)

    def stats(self) -> dict:
        """Gauges for the observability counter registry (name -> callable)."""
        return {
            "occupied": self.occupied,
            "banks": lambda: self.banks,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RUT {self.occupied()}/{self.banks} banks tracked>"


class ConflictTable:
    """Fully-associative LRU table of recently conflicted (bank, row) pairs."""

    def __init__(self, entries: int = 32) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.capacity = entries
        # key: (bank, row) -> cycle the conflict was recorded; OrderedDict
        # iteration order doubles as LRU order (oldest first).
        self._table: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.insertions = 0
        self.promotions = 0  # lookups that found an entry (conflict row hit)
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._table

    def insert(self, bank: int, row: int, now: int) -> Optional[Tuple[int, int]]:
        """Record that (bank, row) was conflicted out of its row buffer.
        Returns the LRU-evicted key if the table overflowed."""
        key = (bank, row)
        evicted = None
        if key in self._table:
            # refresh recency
            self._table.move_to_end(key)
            self._table[key] = now
            return None
        if len(self._table) >= self.capacity:
            evicted, _ = self._table.popitem(last=False)
            self.evictions += 1
        self._table[key] = now
        self.insertions += 1
        return evicted

    def check_and_remove(self, bank: int, row: int) -> bool:
        """On activation: if the row is present it is conflict-prone; remove
        it (the paper removes the entry once the row is prefetched) and
        return True."""
        key = (bank, row)
        if key in self._table:
            del self._table[key]
            self.promotions += 1
            return True
        return False

    def touch(self, bank: int, row: int) -> bool:
        """LRU-refresh without removal (used by tests/ablations)."""
        key = (bank, row)
        if key in self._table:
            self._table.move_to_end(key)
            return True
        return False

    def stats(self) -> dict:
        """Gauges for the observability counter registry (name -> callable).

        ``promotions`` is the paper's key CT health signal: how often a
        recently conflicted row was re-activated soon enough to still be
        resident - i.e. how many conflict-triggered prefetches the table
        enabled.  A high eviction count at low promotions means the table is
        too small for the conflict working set.
        """
        return {
            "occupancy": lambda: len(self._table),
            "insertions": lambda: self.insertions,
            "promotions": lambda: self.promotions,
            "evictions": lambda: self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CT {len(self._table)}/{self.capacity}>"
