"""CAMPS and CAMPS-MOD: the paper's conflict-aware prefetching scheme.

Decision flow (paper Section 3.1 / Figure 3), implemented in
:meth:`CampsPrefetcher.on_demand_access`:

* **Row-buffer hit** - record the access in the RUT.  Once the open row has
  served ``utilization_threshold`` (4) distinct cache lines, fetch the whole
  row to the prefetch buffer, precharge the bank, and clear the RUT entry.

* **Row-buffer conflict** - the newly activated row displaced another.  The
  displaced row's RUT entry moves to the Conflict Table.  If the *newly
  opened* row already has a CT entry, it has been conflicted on recently:
  fetch it to the buffer immediately, drop its CT entry, and precharge.
  Otherwise keep it open and start tracking it in the RUT.

* **Row-buffer empty** - plain activation; start tracking in the RUT (no
  conflict happened, so nothing moves to the CT).

CAMPS-MOD is CAMPS plus the utilization+recency buffer replacement policy
(:class:`~repro.core.buffer.UtilizationRecencyPolicy`); the decision logic is
identical, so both are this one class parameterized by ``modified``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.buffer import (
    LRUPolicy,
    ReplacementPolicy,
    UtilizationRecencyPolicy,
)
from repro.core.prefetcher import PrefetchAction, Prefetcher
from repro.core.tables import ConflictTable, RowUtilizationTable, RUTEntry
from repro.obs.hooks import noop
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


@dataclass(frozen=True)
class CampsParams:
    """Tunable knobs of the CAMPS decision mechanism.

    Defaults are the paper's: threshold 4 distinct lines, 32 CT entries per
    vault, distinct-line utilization counting.
    """

    utilization_threshold: int = 4
    conflict_table_entries: int = 32
    count_distinct: bool = True

    def __post_init__(self) -> None:
        if self.utilization_threshold < 1:
            raise ValueError("utilization_threshold must be >= 1")
        if self.conflict_table_entries < 1:
            raise ValueError("conflict_table_entries must be >= 1")


class CampsPrefetcher(Prefetcher):
    """Conflict-aware memory-side prefetcher (CAMPS / CAMPS-MOD)."""

    name = "camps"

    def __init__(
        self,
        vault_id: int,
        config: HMCConfig,
        params: CampsParams | None = None,
        modified: bool = False,
    ) -> None:
        super().__init__(vault_id, config)
        self.params = params or CampsParams()
        self.modified = modified
        if modified:
            self.name = "camps-mod"
        self.rut = RowUtilizationTable(
            banks=config.banks_per_vault,
            count_distinct=self.params.count_distinct,
        )
        self.ct = ConflictTable(entries=self.params.conflict_table_entries)
        # hot-path mirrors: the frozen-dataclass attribute chain costs two
        # lookups per demand access, and the RUT entry list (bound once in
        # RowUtilizationTable.__init__, mutated in place) lets
        # on_demand_access update utilization without the record_access
        # frame (tables.py keeps the reference implementation).
        self._threshold = self.params.utilization_threshold
        self._rut_entries = self.rut._entries
        self._count_distinct = self.params.count_distinct
        # decision statistics (reported by experiments)
        self.utilization_prefetches = 0
        self.conflict_prefetches = 0

    def _rebind_hooks(self) -> None:
        tracer = self._tracer
        if tracer is not None:
            self._emit_rut_threshold = tracer.rut_threshold
            self._emit_ct_insert = tracer.ct_insert
            self._emit_ct_evict = tracer.ct_evict
            self._emit_ct_hit = tracer.ct_hit
        else:
            self._emit_rut_threshold = noop
            self._emit_ct_insert = noop
            self._emit_ct_evict = noop
            self._emit_ct_hit = noop

    def make_policy(self) -> ReplacementPolicy:
        return UtilizationRecencyPolicy() if self.modified else LRUPolicy()

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        if outcome is RowOutcome.HIT:
            # RUT.record_access inlined (see __init__ mirrors).
            entries = self._rut_entries
            e = entries[bank]
            if e is None or e.row != row:
                e = RUTEntry(row=row, opened_at=now)
                entries[bank] = e
            e.line_mask = mask = e.line_mask | (1 << column)
            e.accesses += 1
            util = mask.bit_count() if self._count_distinct else e.accesses
            if util >= self._threshold:
                # High-utilization row: move it wholesale to the buffer and
                # free the bank (paper: "fetches the whole row ... and
                # precharges bank to make it ready for next request").  The
                # lines already served from the open row seed the buffer
                # entry's utilization counter.
                # ``e`` *is* rut.get(bank) here (installed above), so its
                # mask seeds directly; rut.clear inlined.
                seed = mask
                entries[bank] = None
                self.utilization_prefetches += 1
                self._emit_rut_threshold(self.vault_id, bank, row, util, now)
                return self._count_issue(
                    [
                        PrefetchAction(
                            bank,
                            row,
                            self.full_mask,
                            precharge_after=True,
                            seed_ref_mask=seed,
                            provenance="utilization",
                        )
                    ]
                )
            return []

        if outcome is RowOutcome.CONFLICT:
            # The row that was open lost its buffer: its utilization history
            # moves from the RUT to the CT.
            displaced = self.rut.replace(bank, row, now)
            if displaced is not None:
                evicted = self.ct.insert(bank, displaced.row, now)
                self._emit_ct_insert(self.vault_id, bank, displaced.row, now)
                if evicted is not None:
                    self._emit_ct_evict(self.vault_id, evicted[0], evicted[1], now)
            if self.ct.check_and_remove(bank, row):
                # This row has itself been conflicted out recently: it is
                # conflict-prone, prefetch it now and close the bank.
                self.rut.clear(bank)
                self.conflict_prefetches += 1
                self._emit_ct_hit(self.vault_id, bank, row, now)
                return self._count_issue(
                    [
                        PrefetchAction(
                            bank,
                            row,
                            self.full_mask,
                            precharge_after=True,
                            seed_ref_mask=1 << column,
                            provenance="conflict",
                        )
                    ]
                )
            # Not (yet) conflict-prone: keep it open, track utilization.
            # (record_access inlined; the utilization metric is not needed
            # here, so the popcount is skipped too.)
            entries = self._rut_entries
            e = entries[bank]
            if e is None or e.row != row:
                e = RUTEntry(row=row, opened_at=now)
                entries[bank] = e
            e.line_mask |= 1 << column
            e.accesses += 1
            return []

        # EMPTY: fresh activation of a precharged bank.
        if self.ct.check_and_remove(bank, row):
            self.rut.clear(bank)
            self.conflict_prefetches += 1
            self._emit_ct_hit(self.vault_id, bank, row, now)
            return self._count_issue(
                [
                    PrefetchAction(
                        bank,
                        row,
                        self.full_mask,
                        precharge_after=True,
                        seed_ref_mask=1 << column,
                        provenance="conflict",
                    )
                ]
            )
        # record_access inlined, metric unused (same as the CONFLICT path).
        entries = self._rut_entries
        e = entries[bank]
        if e is None or e.row != row:
            e = RUTEntry(row=row, opened_at=now)
            entries[bank] = e
        e.line_mask |= 1 << column
        e.accesses += 1
        return []

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def observed_stats(self) -> dict:
        """CT/RUT gauges for the observability counter registry."""
        stats = {
            "utilization_prefetches": lambda: self.utilization_prefetches,
            "conflict_prefetches": lambda: self.conflict_prefetches,
            "rut_occupied": lambda: self.rut.occupied(),
        }
        for name, fn in self.ct.stats().items():
            stats[f"ct_{name}"] = fn
        return stats

    def describe(self) -> str:
        kind = "util+recency buffer" if self.modified else "LRU buffer"
        return (
            f"{self.name} (threshold={self.params.utilization_threshold}, "
            f"CT={self.params.conflict_table_entries}, {kind})"
        )
