"""The paper's contribution: conflict-aware memory-side prefetching.

This package contains everything that lives in a vault controller's prefetch
engine:

* :mod:`repro.core.tables` - the Row Utilization Table (RUT, one entry per
  bank) and the Conflict Table (CT, 32 fully-associative entries per vault).
* :mod:`repro.core.buffer` - the 16-entry row-granularity prefetch buffer and
  its replacement policies (LRU, and the paper's utilization+recency policy).
* :mod:`repro.core.prefetcher` - the scheme interface the vault controller
  drives.
* :mod:`repro.core.camps` - CAMPS and CAMPS-MOD.
* :mod:`repro.core.baselines` - the comparison schemes BASE, BASE-HIT and MMD.
* :mod:`repro.core.schemes` - name -> factory registry used by experiments.
"""

from repro.core.buffer import (
    BufferEntry,
    LRUPolicy,
    PrefetchBuffer,
    ReplacementPolicy,
    UtilizationRecencyPolicy,
)
from repro.core.tables import ConflictTable, RowUtilizationTable
from repro.core.prefetcher import NullPrefetcher, PrefetchAction, Prefetcher
from repro.core.camps import CampsParams, CampsPrefetcher
from repro.core.baselines import BasePrefetcher, BaseHitPrefetcher, MMDPrefetcher
from repro.core.extensions import ThrottleParams, ThrottledCampsPrefetcher
from repro.core.schemes import SCHEMES, make_prefetcher, scheme_names

__all__ = [
    "BufferEntry",
    "LRUPolicy",
    "PrefetchBuffer",
    "ReplacementPolicy",
    "UtilizationRecencyPolicy",
    "ConflictTable",
    "RowUtilizationTable",
    "NullPrefetcher",
    "PrefetchAction",
    "Prefetcher",
    "CampsParams",
    "CampsPrefetcher",
    "BasePrefetcher",
    "BaseHitPrefetcher",
    "MMDPrefetcher",
    "ThrottleParams",
    "ThrottledCampsPrefetcher",
    "SCHEMES",
    "make_prefetcher",
    "scheme_names",
]
