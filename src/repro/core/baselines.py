"""The comparison schemes of the paper's evaluation: BASE, BASE-HIT and MMD.

* **BASE** - prefetches the whole row on *every* demand access that reaches a
  bank, then precharges.  By construction every bank access finds the bank
  precharged, so BASE shows zero row-buffer conflicts (the paper excludes it
  from Figure 6 for exactly this reason) - but it fetches many never-used
  rows, giving it the worst accuracy (Figure 7) and energy (Figure 9).

* **BASE-HIT** - prefetches a whole row only when two or more requests to
  that row are visible in the vault's read queue, i.e. demand-confirmed
  spatial locality.  Otherwise a plain open-page policy.

* **MMD** - models the existing memory-side prefetcher the paper compares
  against (Yedlapalli et al., "Meeting Midway", PACT 2013 [8]): it prefetches
  a run of ``degree`` untouched cache lines from the currently open row and
  adjusts ``degree`` with usefulness feedback, managing the buffer with plain
  LRU.  Unlike BASE/CAMPS it does not precharge after prefetching - it
  piggybacks on the open row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.prefetcher import PrefetchAction, Prefetcher
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


class BasePrefetcher(Prefetcher):
    """BASE: whole-row prefetch on every bank access, precharge after."""

    name = "base"

    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        return self._count_issue(
            [
                PrefetchAction(
                    bank,
                    row,
                    self.full_mask,
                    precharge_after=True,
                    seed_ref_mask=1 << column,
                    provenance="base",
                )
            ]
        )


class BaseHitPrefetcher(Prefetcher):
    """BASE-HIT: whole-row prefetch when >= ``queue_hit_threshold`` requests
    to the row sit in the read queue (including the one being served)."""

    name = "base-hit"

    def __init__(
        self, vault_id: int, config: HMCConfig, queue_hit_threshold: int = 2
    ) -> None:
        super().__init__(vault_id, config)
        if queue_hit_threshold < 1:
            raise ValueError("queue_hit_threshold must be >= 1")
        self.queue_hit_threshold = queue_hit_threshold

    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        assert self.controller is not None, "BASE-HIT requires bind(controller)"
        # "Two or more hits based on the requests in the read queue": the
        # request being served has already left the queue, so the trigger
        # needs `queue_hit_threshold` *still-pending* same-row reads.
        pending = self.controller.pending_row_requests(bank, row)
        if pending >= self.queue_hit_threshold:
            return self._count_issue(
                [
                    PrefetchAction(
                        bank,
                        row,
                        self.full_mask,
                        precharge_after=True,
                        seed_ref_mask=1 << column,
                        provenance="queue",
                    )
                ]
            )
        return []


@dataclass(frozen=True)
class MMDParams:
    """Feedback-directed degree control for the MMD scheme.

    ``degree`` doubles when epoch line-accuracy exceeds ``high_watermark``
    and halves below ``low_watermark`` (Srinath et al. HPCA'07 style
    feedback, as adopted by the memory-side scheme of [8]).
    """

    initial_degree: int = 4
    min_degree: int = 1
    max_degree: int = 15
    epoch_lines: int = 512
    high_watermark: float = 0.60
    low_watermark: float = 0.30

    def __post_init__(self) -> None:
        if not 1 <= self.min_degree <= self.initial_degree <= self.max_degree:
            raise ValueError("degree bounds must satisfy min <= initial <= max")
        if self.epoch_lines < 1:
            raise ValueError("epoch_lines must be >= 1")
        if not 0.0 <= self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 <= low <= high <= 1")


class MMDPrefetcher(Prefetcher):
    """Dynamic-degree memory-side prefetcher with an LRU buffer."""

    name = "mmd"

    def __init__(
        self, vault_id: int, config: HMCConfig, params: MMDParams | None = None
    ) -> None:
        super().__init__(vault_id, config)
        self.params = params or MMDParams()
        self.degree = self.params.initial_degree
        # epoch accounting against the buffer's cumulative line counters
        self._epoch_lines_mark = 0
        self._epoch_used_mark = 0
        self.degree_increases = 0
        self.degree_decreases = 0

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def _maybe_adjust_degree(self) -> None:
        assert self.controller is not None
        buf = self.controller.buffer
        if buf is None:
            return
        inserted = buf.lines_inserted - self._epoch_lines_mark
        if inserted < self.params.epoch_lines:
            return
        used = buf.lines_used - self._epoch_used_mark
        accuracy = used / inserted
        if accuracy > self.params.high_watermark:
            new = min(self.degree * 2, self.params.max_degree)
            if new != self.degree:
                self.degree_increases += 1
            self.degree = new
        elif accuracy < self.params.low_watermark:
            new = max(self.degree // 2, self.params.min_degree)
            if new != self.degree:
                self.degree_decreases += 1
            self.degree = new
        self._epoch_lines_mark = buf.lines_inserted
        self._epoch_used_mark = buf.lines_used

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        assert self.controller is not None, "MMD requires bind(controller)"
        self._maybe_adjust_degree()

        lines = self.config.lines_per_row
        already = 0
        buf = self.controller.buffer
        if buf is not None:
            entry = buf.get(bank, row)
            if entry is not None:
                already = entry.valid_mask

        # Next `degree` lines *forward* from the demanded column (streams
        # run forward; wrapping to the row start would mostly re-stage
        # already-consumed lines), skipping lines already staged.
        mask = 0
        picked = 0
        for c in range(column + 1, lines):
            if picked >= self.degree:
                break
            bit = 1 << c
            if already & bit:
                continue
            mask |= bit
            picked += 1
        if mask == 0:
            return []
        return self._count_issue(
            [PrefetchAction(bank, row, mask, precharge_after=False, provenance="mmd")]
        )

    def describe(self) -> str:
        return f"{self.name} (degree={self.degree}, LRU buffer)"
