"""Scheme interface between a vault controller and its prefetch engine.

The vault controller drives the engine through two hooks:

* :meth:`Prefetcher.on_buffer_hit` - a demand access was served from the
  prefetch buffer (no bank activity happened).
* :meth:`Prefetcher.on_demand_access` - a demand access went to a bank; the
  hook sees how the row buffer was found (hit / empty / conflict) and returns
  the list of :class:`PrefetchAction` row fetches to perform.

Schemes that need visibility into the controller's queues (BASE-HIT inspects
the read queue) receive the controller via :meth:`Prefetcher.bind`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.buffer import LRUPolicy, ReplacementPolicy
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vault.controller import VaultController


@dataclass(frozen=True, slots=True)
class PrefetchAction:
    """One row fetch the controller should perform on the prefetcher's behalf.

    ``line_mask`` selects which lines to stage (a full mask means the whole
    row, the common case; MMD stages partial rows).  ``precharge_after``
    mirrors the paper: CAMPS and BASE close the bank after copying the row so
    the next access to a different row pays no conflict.

    ``seed_ref_mask`` carries the row's utilization history from before the
    fetch (lines already served from the open row buffer) into the buffer
    entry, so the paper's utilization counter - "distinct cache lines
    referenced within that row" - continues across the move.  CAMPS-MOD's
    fully-consumed eviction rule depends on this continuity.

    ``provenance`` names the decision path that issued the action (CAMPS:
    ``"utilization"`` or ``"conflict"``; other schemes use their own tags).
    It travels with the row into the prefetch buffer so every later hit or
    eviction event can be attributed to the trigger that fetched the row.
    """

    bank: int
    row: int
    line_mask: int
    precharge_after: bool = True
    seed_ref_mask: int = 0
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.line_mask == 0:
            raise ValueError("PrefetchAction with empty line mask")


class Prefetcher(abc.ABC):
    """Base class for all memory-side prefetching schemes."""

    #: registry name, e.g. "camps-mod"
    name: str = "abstract"
    #: whether the controller should allocate a prefetch buffer at all
    uses_buffer: bool = True

    def __init__(self, vault_id: int, config: HMCConfig) -> None:
        self.vault_id = vault_id
        self.config = config
        self.controller: Optional["VaultController"] = None
        self.prefetches_issued = 0
        #: observability hook (repro.obs.Tracer); installed by Tracer.wire_system
        self._tracer = None
        self._rebind_hooks()

    # ------------------------------------------------------------------
    # Instrumentation (see repro.obs.hooks)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._rebind_hooks()

    def _rebind_hooks(self) -> None:
        """Resolve per-site emit attributes against the current tracer.

        Subclasses with decision-point hooks override this, binding each
        ``self._emit_x`` to either ``self._tracer.x`` or
        :func:`repro.obs.hooks.noop`.  The base class has no hook sites.
        """

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, controller: "VaultController") -> None:
        """Attach the owning vault controller (gives queue visibility)."""
        self.controller = controller

    def make_policy(self) -> ReplacementPolicy:
        """Replacement policy for this scheme's prefetch buffer.

        Every scheme in the paper except CAMPS-MOD manages the buffer with
        plain LRU.
        """
        return LRUPolicy()

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_buffer_hit(
        self, bank: int, row: int, column: int, is_write: bool, now: int
    ) -> None:
        """A demand access hit the prefetch buffer.  Default: no-op."""

    @abc.abstractmethod
    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        """A demand access was served by a bank; decide what to prefetch."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    @property
    def full_mask(self) -> int:
        return (1 << self.config.lines_per_row) - 1

    def _count_issue(self, actions: List[PrefetchAction]) -> List[PrefetchAction]:
        self.prefetches_issued += len(actions)
        return actions

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        return self.name

    def observed_stats(self) -> dict:
        """Scheme-specific gauges for the observability counter registry:
        ``name -> zero-arg callable``.  Default: none."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} vault={self.vault_id}>"


class NullPrefetcher(Prefetcher):
    """No prefetching at all: the plain HMC without a prefetch buffer.

    Not one of the paper's five compared schemes, but the natural control for
    examples, tests and the ablation benches.
    """

    name = "none"
    uses_buffer = False

    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        return []
