"""The per-vault prefetch buffer and its replacement policies.

Table I: 16 KB per vault, fully associative, 1 KB (whole-row) lines, 22-cycle
hit latency.  Entries are row-granularity but carry per-line valid masks so
the MMD comparison scheme can stage partial rows in the same structure.

Recency is modeled exactly as the paper describes: the most recently used row
holds the value ``entries - 1`` (15), every row whose value exceeded the
accessed row's old value decrements, and the least recently used row sits at
0 - i.e. the values are always a permutation of LRU stack positions.  Both
replacement policies read this shared state:

* :class:`LRUPolicy` - evict the minimum-recency row (used by BASE,
  BASE-HIT, MMD and plain CAMPS).
* :class:`UtilizationRecencyPolicy` - the CAMPS-MOD policy: a fully-consumed
  row (every line referenced) leaves first; otherwise the row minimizing
  ``utilization + recency`` leaves, ties broken by lower utilization.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

RowKey = Tuple[int, int]  # (bank, row)


def _popcount(x: int) -> int:
    return x.bit_count()


class BufferEntry:
    """One prefetched row resident in the buffer."""

    __slots__ = (
        "bank",
        "row",
        "valid_mask",
        "ref_mask",
        "served_mask",
        "dirty_mask",
        "accesses",
        "recency",
        "ready_time",
        "insert_time",
        "provenance",
    )

    def __init__(
        self,
        bank: int,
        row: int,
        valid_mask: int,
        ready_time: int,
        insert_time: int,
        provenance: str = "",
    ) -> None:
        self.bank = bank
        self.row = row
        self.valid_mask = valid_mask  # lines physically present
        self.ref_mask = 0  # distinct lines referenced in the row (util)
        self.served_mask = 0  # distinct lines served from this buffer
        self.dirty_mask = 0  # lines written while resident
        self.accesses = 0  # raw hit count
        self.recency = -1  # LRU stack position, managed by the buffer
        self.ready_time = ready_time  # cycle the row finishes arriving
        self.insert_time = insert_time
        self.provenance = provenance  # decision path that fetched the row

    @property
    def key(self) -> RowKey:
        return (self.bank, self.row)

    @property
    def utilization(self) -> int:
        """Distinct cache lines referenced (the paper's utilization counter)."""
        return _popcount(self.ref_mask)

    @property
    def valid_lines(self) -> int:
        return _popcount(self.valid_mask)

    @property
    def is_dirty(self) -> bool:
        return self.dirty_mask != 0

    @property
    def was_used(self) -> bool:
        """Did the entry serve at least one demand from the buffer?  (The
        ref_mask alone does not answer this: it may be seeded with lines that
        were served from the open row before the fetch.)"""
        return self.accesses > 0

    def seed_ref(self, mask: int) -> None:
        """Mark lines as already referenced (served from the row buffer
        before the row moved here).  Feeds the utilization counter but not
        the buffer-hit accuracy accounting."""
        self.ref_mask |= mask

    def fully_consumed(self, lines_per_row: int) -> bool:
        """True when every line of the whole row has been referenced."""
        full = (1 << lines_per_row) - 1
        return self.ref_mask == full

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BufEntry b{self.bank}r{self.row} util={self.utilization} "
            f"rec={self.recency} valid={self.valid_lines}>"
        )


class ReplacementPolicy(abc.ABC):
    """Strategy object choosing which resident row leaves on overflow."""

    name = "abstract"

    @abc.abstractmethod
    def choose_victim(
        self, entries: List[BufferEntry], lines_per_row: int
    ) -> BufferEntry:
        """Pick the victim among ``entries`` (never empty)."""


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used (the policy of BASE/BASE-HIT/MMD/CAMPS)."""

    name = "lru"

    def choose_victim(
        self, entries: List[BufferEntry], lines_per_row: int
    ) -> BufferEntry:
        return min(entries, key=lambda e: e.recency)


class UtilizationRecencyPolicy(ReplacementPolicy):
    """The CAMPS-MOD policy (paper Section 3.2 / Figure 4).

    1. If any row has had *all* of its distinct cache lines accessed, evict
       it - its data has already been fully transferred to the processor.
    2. Otherwise evict the row with minimum (utilization + w * recency).
    3. Ties break toward the lower utilization count.

    The paper's literal formula is the plain sum (``recency_weight = 1``).
    With our synthetic traffic the plain sum lets high-utilization rows that
    have gone cold outlive rows still awaiting their reuse, so the default
    scales the recency term by 2; the ablation bench
    (``benchmarks/bench_ablation_policy.py``) compares both.
    """

    name = "util-recency"

    def __init__(self, recency_weight: int = 2) -> None:
        if recency_weight < 1:
            raise ValueError("recency_weight must be >= 1")
        self.recency_weight = recency_weight

    def choose_victim(
        self, entries: List[BufferEntry], lines_per_row: int
    ) -> BufferEntry:
        for e in entries:
            if e.fully_consumed(lines_per_row):
                return e
        w = self.recency_weight
        return min(
            entries, key=lambda e: (e.utilization + w * e.recency, e.utilization)
        )


class PrefetchBuffer:
    """Fully-associative, row-granularity prefetch buffer for one vault.

    The buffer is also the accuracy bookkeeper (Figure 7): it knows, for
    every row it ever held, whether any of its prefetched lines were served
    to the host before eviction.
    """

    def __init__(
        self,
        entries: int,
        lines_per_row: int,
        policy: ReplacementPolicy,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        if lines_per_row < 1:
            raise ValueError("lines_per_row must be >= 1")
        self.capacity = entries
        self.lines_per_row = lines_per_row
        self.policy = policy
        self._entries: Dict[RowKey, BufferEntry] = {}
        # accuracy accounting (rows and lines)
        self.rows_inserted = 0
        self.rows_retired_used = 0
        self.rows_retired_unused = 0
        self.lines_inserted = 0
        self.lines_used = 0
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    # ------------------------------------------------------------------
    # Recency stack maintenance (paper Section 3.2 semantics)
    # ------------------------------------------------------------------
    def _make_mru(self, entry: BufferEntry, old_value: int) -> None:
        top = self.capacity - 1
        if old_value == top and entry.recency == top:
            # Re-touching the MRU entry: no other recency exceeds ``top``,
            # so the decrement sweep would scan and change nothing.  (The
            # recency check matters: a fresh insert may inherit old_value
            # == top from an evicted MRU victim and still needs stamping.)
            return
        for e in self._entries.values():
            if e is not entry and e.recency > old_value:
                e.recency -= 1
        entry.recency = top

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: RowKey) -> bool:
        return key in self._entries

    def get(self, bank: int, row: int) -> Optional[BufferEntry]:
        return self._entries.get((bank, row))

    def entries(self) -> List[BufferEntry]:
        return list(self._entries.values())

    # ------------------------------------------------------------------
    # Hot-path operations
    # ------------------------------------------------------------------
    def lookup(
        self, bank: int, row: int, column: int, is_write: bool
    ) -> Optional[BufferEntry]:
        """Probe for a demand access.  On a hit the entry's utilization,
        dirty state and recency are updated and the entry returned; the
        caller derives service time from ``entry.ready_time``."""
        e = self._entries.get((bank, row))
        bit = 1 << column
        if e is None or not (e.valid_mask & bit):
            self.misses += 1
            return None
        self.hits += 1
        if not (e.served_mask & bit):
            e.served_mask |= bit
            self.lines_used += 1
        e.ref_mask |= bit
        e.accesses += 1
        if is_write:
            e.dirty_mask |= bit
        self._make_mru(e, e.recency)
        return e

    def insert(
        self,
        bank: int,
        row: int,
        valid_mask: int,
        ready_time: int,
        now: int,
        provenance: str = "",
    ) -> Optional[BufferEntry]:
        """Stage a (whole or partial) row arriving at ``ready_time``.

        If the row is already resident the masks merge (MMD extends partial
        rows this way).  Returns the evicted entry when the insertion
        displaced one, so the vault controller can write back dirty lines and
        the caller can observe retirement.  ``provenance`` tags the entry
        with the decision path that fetched it (kept from the first insert
        when masks merge).
        """
        full_mask = (1 << self.lines_per_row) - 1
        if valid_mask == 0 or valid_mask & ~full_mask:
            raise ValueError(f"invalid line mask 0x{valid_mask:x}")
        key = (bank, row)
        existing = self._entries.get(key)
        new_lines = valid_mask
        if existing is not None:
            new_lines = valid_mask & ~existing.valid_mask
            existing.valid_mask |= valid_mask
            existing.ready_time = max(existing.ready_time, ready_time)
            self.lines_inserted += _popcount(new_lines)
            self._make_mru(existing, existing.recency)
            return None

        victim: Optional[BufferEntry] = None
        old_value = -1
        if len(self._entries) >= self.capacity:
            victim = self.policy.choose_victim(
                list(self._entries.values()), self.lines_per_row
            )
            old_value = victim.recency
            self._retire(victim)
            del self._entries[victim.key]

        entry = BufferEntry(bank, row, valid_mask, ready_time, now, provenance)
        self._entries[key] = entry
        self._make_mru(entry, old_value)
        self.rows_inserted += 1
        self.lines_inserted += _popcount(valid_mask)
        return victim

    def invalidate(self, bank: int, row: int) -> Optional[BufferEntry]:
        """Drop a row (e.g. external coherence in extended setups)."""
        e = self._entries.pop((bank, row), None)
        if e is not None:
            # Keep the remaining recency values a dense, top-anchored
            # permutation: everything below the removed slot shifts up.
            for other in self._entries.values():
                if other.recency < e.recency:
                    other.recency += 1
            self._retire(e)
        return e

    # ------------------------------------------------------------------
    # Accuracy accounting
    # ------------------------------------------------------------------
    def _retire(self, e: BufferEntry) -> None:
        if e.was_used:
            self.rows_retired_used += 1
        else:
            self.rows_retired_unused += 1
        if e.is_dirty:
            self.dirty_evictions += 1

    def reset_accounting(self) -> None:
        """Zero the accuracy/hit accounting without evicting resident rows
        (post-warmup measurement windows)."""
        self.rows_inserted = 0
        self.rows_retired_used = 0
        self.rows_retired_unused = 0
        self.lines_inserted = 0
        self.lines_used = 0
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    def finalize(self) -> None:
        """Count still-resident rows toward accuracy at end of simulation."""
        for e in self._entries.values():
            if e.was_used:
                self.rows_retired_used += 1
            else:
                self.rows_retired_unused += 1

    @property
    def row_accuracy(self) -> float:
        """Fraction of retired prefetched rows that served >= 1 demand."""
        n = self.rows_retired_used + self.rows_retired_unused
        return self.rows_retired_used / n if n else 0.0

    @property
    def line_accuracy(self) -> float:
        """Fraction of prefetched lines that were referenced."""
        return self.lines_used / self.lines_inserted if self.lines_inserted else 0.0

    def check_recency_invariant(self) -> bool:
        """Recency values must always form a dense top-anchored permutation:
        with k resident entries they are exactly {capacity-k .. capacity-1}.
        Exposed for tests and hypothesis properties."""
        values = sorted(e.recency for e in self._entries.values())
        k = len(values)
        expected = list(range(self.capacity - k, self.capacity))
        return values == expected

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PrefetchBuffer {len(self._entries)}/{self.capacity} "
            f"policy={self.policy.name} hits={self.hits}>"
        )
