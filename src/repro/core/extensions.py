"""Extension schemes beyond the paper.

``camps-fdp`` - CAMPS-MOD with feedback-directed throttling (Srinath et al.,
HPCA 2007 applied to the paper's scheme): when the measured prefetch
accuracy of recent epochs drops below a low watermark, the conflict-table
trigger is suspended (the riskier of CAMPS's two triggers - single-touch
conflict rows produce its useless fetches); it resumes once accuracy
recovers.  The RUT utilization trigger keeps running: a row that already
served four distinct lines is near-certain to be useful.

This is the kind of robustness the paper's future work gestures at: CAMPS's
accuracy is high on the paper's workloads, but a pointer-chasing phase can
flood the CT with never-revisited rows; throttling bounds the damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.camps import CampsParams, CampsPrefetcher
from repro.core.prefetcher import PrefetchAction
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


@dataclass(frozen=True)
class ThrottleParams:
    """Feedback window and watermarks for CAMPS-FDP."""

    epoch_rows: int = 16  # retired prefetched rows per feedback epoch
    low_watermark: float = 0.45  # suspend the CT trigger below this
    high_watermark: float = 0.60  # resume it above this

    def __post_init__(self) -> None:
        if self.epoch_rows < 1:
            raise ValueError("epoch_rows must be >= 1")
        if not 0.0 <= self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 <= low <= high <= 1")


class ThrottledCampsPrefetcher(CampsPrefetcher):
    """CAMPS-MOD with accuracy-feedback throttling of the CT trigger."""

    name = "camps-fdp"

    def __init__(
        self,
        vault_id: int,
        config: HMCConfig,
        params: CampsParams | None = None,
        throttle: ThrottleParams | None = None,
    ) -> None:
        super().__init__(vault_id, config, params=params, modified=True)
        self.name = "camps-fdp"
        self.throttle = throttle or ThrottleParams()
        self.ct_suspended = False
        self.suspensions = 0
        self.resumes = 0
        self._epoch_used_mark = 0
        self._epoch_unused_mark = 0

    # ------------------------------------------------------------------
    def _epoch_feedback(self) -> None:
        assert self.controller is not None
        buf = self.controller.buffer
        if buf is None:
            return
        used = buf.rows_retired_used - self._epoch_used_mark
        unused = buf.rows_retired_unused - self._epoch_unused_mark
        retired = used + unused
        if retired < self.throttle.epoch_rows:
            return
        accuracy = used / retired
        if not self.ct_suspended and accuracy < self.throttle.low_watermark:
            self.ct_suspended = True
            self.suspensions += 1
        elif self.ct_suspended and accuracy > self.throttle.high_watermark:
            self.ct_suspended = False
            self.resumes += 1
        self._epoch_used_mark = buf.rows_retired_used
        self._epoch_unused_mark = buf.rows_retired_unused

    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        self._epoch_feedback()
        actions = super().on_demand_access(bank, row, column, is_write, outcome, now)
        if not self.ct_suspended or not actions:
            return actions
        # Provenance is determined by the row-buffer outcome: the RUT
        # trigger fires only on HIT (utilization accumulates in the open
        # row); the CT trigger fires only on EMPTY/CONFLICT activations.
        if outcome is RowOutcome.HIT:
            return actions  # utilization-triggered: always allowed
        # CT-triggered while suspended: keep the table bookkeeping that
        # already happened (warm state for the resume) but drop the fetch.
        self.conflict_prefetches -= 1
        self.prefetches_issued -= len(actions)
        return []

    def describe(self) -> str:
        state = "CT suspended" if self.ct_suspended else "CT active"
        return f"{self.name} ({state}, epoch={self.throttle.epoch_rows})"
