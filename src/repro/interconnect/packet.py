"""HMC link packet formats.

Following the HMC 2.1 specification's transaction layer in simplified form:
every packet carries a 16 B header+tail envelope; data payloads ride in 16 B
flits.  A 64 B read therefore costs 1 request flit out and 5 response flits
back, which is what makes memory-side prefetching attractive - row transfers
to the prefetch buffer use the vault's internal TSVs and never appear here.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class PacketKind(enum.Enum):
    READ_REQUEST = "rd_req"
    WRITE_REQUEST = "wr_req"  # carries 64 B payload
    READ_RESPONSE = "rd_resp"  # carries 64 B payload
    WRITE_RESPONSE = "wr_resp"  # ack only


def packet_bytes(kind: PacketKind, line_bytes: int, header_bytes: int) -> int:
    """Wire size of a packet of ``kind`` for a given cache-line size."""
    if kind in (PacketKind.WRITE_REQUEST, PacketKind.READ_RESPONSE):
        return header_bytes + line_bytes
    return header_bytes


@dataclass(frozen=True)
class Packet:
    """One transaction-layer packet (used by tests and trace dumps; the hot
    path passes sizes directly to the link model)."""

    kind: PacketKind
    req_id: int
    vault: int
    nbytes: int

    def flits(self, flit_bytes: int) -> int:
        return max(1, math.ceil(self.nbytes / flit_bytes))

    def __str__(self) -> str:
        return f"{self.kind.value}#{self.req_id}->v{self.vault}({self.nbytes}B)"
