"""Off-chip serial links and the internal crossbar of the HMC.

The processor talks to the cube over four full-duplex SerDes links (Table I:
16 input + 16 output lanes at 12.5 Gbps each); a crossbar in the logic base
routes request packets to vault controllers (paper Figure 2).  Packets are
flit-quantized; serialization occupies a link direction for
``bytes / bytes_per_cycle`` cycles and every flit is charged to the energy
model.
"""

from repro.interconnect.packet import Packet, PacketKind, packet_bytes
from repro.interconnect.link import LinkDirection, SerialLink
from repro.interconnect.crossbar import Crossbar

__all__ = [
    "Packet",
    "PacketKind",
    "packet_bytes",
    "LinkDirection",
    "SerialLink",
    "Crossbar",
]
