"""Serial link model: serialization delay + fixed SerDes/flight latency.

Each of the four links is full-duplex: an independent request direction
(host -> cube) and response direction (cube -> host).  A direction is a
serialization server: a packet occupies it for ``nbytes / bytes_per_cycle``
cycles (arithmetic busy-until, no events), then lands after a further fixed
``serdes_latency``.  Per-direction flit and byte counts feed the energy model
and the utilization report.

Fault injection (:mod:`repro.faults`) is opt-in: when a
:class:`~repro.faults.LinkFaultConfig` is attached, each direction carries a
:class:`~repro.faults.RetryBuffer` that resolves CRC/drop episodes at send
time - replayed packets occupy the wire again (plus a NAK round-trip), and
a retraining penalty applies after ``max_retries`` consecutive failures.
Delivery is still guaranteed; faults cost cycles and wire flits, never data.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.faults import LinkFaultConfig, LinkFaultInjector, RetryBuffer
from repro.obs.hooks import noop


class LinkDirection:
    """One direction of one serial link."""

    __slots__ = (
        "name",
        "bytes_per_cycle",
        "serdes_latency",
        "flit_bytes",
        "busy_until",
        "packets",
        "bytes_sent",
        "flits_sent",
        "busy_cycles",
        "retry",
        "_tracer",
        "_emit_retry",
        "_emit_retrain",
        "_ser_cache",
    )

    def __init__(
        self,
        name: str,
        bytes_per_cycle: float,
        serdes_latency: int,
        flit_bytes: int,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if serdes_latency < 0:
            raise ValueError("serdes_latency must be non-negative")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.serdes_latency = serdes_latency
        self.flit_bytes = flit_bytes
        self.busy_until = 0
        self.packets = 0
        self.bytes_sent = 0
        self.flits_sent = 0
        self.busy_cycles = 0
        self.retry: Optional[RetryBuffer] = None
        self._tracer = None
        self._emit_retry = noop
        self._emit_retrain = noop
        # packet sizes repeat (request/response are each one size), so the
        # ceil-division pair is memoised per nbytes
        self._ser_cache: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Instrumentation (see repro.obs.hooks)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._emit_retry = tracer.link_retry if tracer is not None else noop
        self._emit_retrain = tracer.link_retrain if tracer is not None else noop

    def send(self, at: int, nbytes: int) -> Tuple[int, int]:
        """Serialize ``nbytes`` starting no earlier than ``at``.

        Returns ``(arrival_cycle, flits)``: when the packet is fully
        delivered at the far end, and how many flits crossed the wire
        (replays included - the energy model charges every wire crossing).
        """
        busy = self.busy_until
        start = at if at > busy else busy
        cached = self._ser_cache.get(nbytes)
        if cached is None:
            # Validation lives on the cache-miss path: every distinct nbytes
            # is checked exactly once, the steady state pays nothing.
            if nbytes < 1:
                raise ValueError("nbytes must be >= 1")
            cached = (
                max(1, math.ceil(nbytes / self.bytes_per_cycle)),
                max(1, math.ceil(nbytes / self.flit_bytes)),
            )
            self._ser_cache[nbytes] = cached
        ser, flits = cached
        occupancy = ser
        wire_flits = flits
        retry = self.retry
        if retry is not None and retry.active:
            replays, retrained = retry.transmit(nbytes, flits)
            if replays:
                cfg = retry.config
                occupancy += replays * (ser + cfg.retry_latency)
                wire_flits += replays * flits
                if retrained:
                    occupancy += cfg.retrain_latency
                self._emit_retry(self.name, replays, nbytes, start)
                if retrained:
                    self._emit_retrain(self.name, start)
        self.busy_until = start + occupancy
        self.busy_cycles += occupancy
        self.packets += 1
        self.bytes_sent += nbytes
        self.flits_sent += wire_flits
        return start + occupancy + self.serdes_latency, wire_flits

    def utilization(self, total_cycles: int) -> float:
        """Fraction of time this direction spent serializing.

        Clamped to 1.0: the last packet's serialization (and any retry
        episode) can extend past the measurement window, so raw
        ``busy_cycles`` may exceed ``total_cycles``.
        """
        if not total_cycles:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)

    def reset_statistics(self) -> None:
        """Warmup boundary: zero traffic and retry counters (busy_until and
        the injector RNG stream are simulation state and are preserved)."""
        self.packets = 0
        self.bytes_sent = 0
        self.flits_sent = 0
        self.busy_cycles = 0
        if self.retry is not None:
            self.retry.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkDir {self.name} busy_until={self.busy_until} pkts={self.packets}>"


class SerialLink:
    """A full-duplex link: one request and one response direction."""

    def __init__(
        self,
        link_id: int,
        bytes_per_cycle: float,
        serdes_latency: int,
        flit_bytes: int,
        faults: Optional[LinkFaultConfig] = None,
    ) -> None:
        self.link_id = link_id
        self.request = LinkDirection(
            f"link{link_id}.req", bytes_per_cycle, serdes_latency, flit_bytes
        )
        self.response = LinkDirection(
            f"link{link_id}.resp", bytes_per_cycle, serdes_latency, flit_bytes
        )
        if faults is not None:
            self.attach_faults(faults)

    def attach_faults(self, config: LinkFaultConfig) -> None:
        """Enable fault injection on both directions.

        A no-op when the config models a healthy link (``enabled`` False),
        so the zero-fault path stays byte-identical to a link without the
        fault layer.  Each direction gets its own SHA-256-derived RNG
        stream, keyed by ``(seed, link_id, direction)``.
        """
        if not config.enabled:
            return
        for d, tag in ((self.request, "req"), (self.response, "resp")):
            injector = LinkFaultInjector(config, self.link_id, tag)
            d.retry = RetryBuffer(config, injector)

    def reset_statistics(self) -> None:
        """Warmup boundary for the whole link: both directions zero their
        traffic counters AND any attached retry/fault counters (see
        :meth:`LinkDirection.reset_statistics`), so a mid-run reset can
        never double-count replays already folded into earlier summaries."""
        self.request.reset_statistics()
        self.response.reset_statistics()

    @property
    def total_flits(self) -> int:
        return self.request.flits_sent + self.response.flits_sent

    @property
    def total_busy_cycles(self) -> int:
        """Combined serialization occupancy of both directions (the
        telemetry layer turns per-epoch deltas of this into utilization)."""
        return self.request.busy_cycles + self.response.busy_cycles

    def fault_counters(self) -> Optional[dict]:
        """Aggregated retry counters across both directions, or None when
        fault injection is not attached."""
        dirs = [d for d in (self.request, self.response) if d.retry is not None]
        if not dirs:
            return None
        agg: dict = {}
        for d in dirs:
            for key, value in d.retry.counters().items():
                if key == "max_episode_replays":
                    agg[key] = max(agg.get(key, 0), value)
                else:
                    agg[key] = agg.get(key, 0) + value
        return agg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SerialLink {self.link_id}>"
