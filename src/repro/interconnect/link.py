"""Serial link model: serialization delay + fixed SerDes/flight latency.

Each of the four links is full-duplex: an independent request direction
(host -> cube) and response direction (cube -> host).  A direction is a
serialization server: a packet occupies it for ``nbytes / bytes_per_cycle``
cycles (arithmetic busy-until, no events), then lands after a further fixed
``serdes_latency``.  Per-direction flit and byte counts feed the energy model
and the utilization report.
"""

from __future__ import annotations

import math
from typing import Tuple


class LinkDirection:
    """One direction of one serial link."""

    __slots__ = (
        "name",
        "bytes_per_cycle",
        "serdes_latency",
        "flit_bytes",
        "busy_until",
        "packets",
        "bytes_sent",
        "flits_sent",
        "busy_cycles",
    )

    def __init__(
        self,
        name: str,
        bytes_per_cycle: float,
        serdes_latency: int,
        flit_bytes: int,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if serdes_latency < 0:
            raise ValueError("serdes_latency must be non-negative")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.serdes_latency = serdes_latency
        self.flit_bytes = flit_bytes
        self.busy_until = 0
        self.packets = 0
        self.bytes_sent = 0
        self.flits_sent = 0
        self.busy_cycles = 0

    def send(self, at: int, nbytes: int) -> Tuple[int, int]:
        """Serialize ``nbytes`` starting no earlier than ``at``.

        Returns ``(arrival_cycle, flits)``: when the packet is fully
        delivered at the far end, and how many flits crossed the wire.
        """
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        start = max(at, self.busy_until)
        ser = max(1, math.ceil(nbytes / self.bytes_per_cycle))
        self.busy_until = start + ser
        self.busy_cycles += ser
        flits = max(1, math.ceil(nbytes / self.flit_bytes))
        self.packets += 1
        self.bytes_sent += nbytes
        self.flits_sent += flits
        return start + ser + self.serdes_latency, flits

    def utilization(self, total_cycles: int) -> float:
        """Fraction of time this direction spent serializing."""
        return self.busy_cycles / total_cycles if total_cycles else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkDir {self.name} busy_until={self.busy_until} pkts={self.packets}>"


class SerialLink:
    """A full-duplex link: one request and one response direction."""

    def __init__(
        self,
        link_id: int,
        bytes_per_cycle: float,
        serdes_latency: int,
        flit_bytes: int,
    ) -> None:
        self.link_id = link_id
        self.request = LinkDirection(
            f"link{link_id}.req", bytes_per_cycle, serdes_latency, flit_bytes
        )
        self.response = LinkDirection(
            f"link{link_id}.resp", bytes_per_cycle, serdes_latency, flit_bytes
        )

    @property
    def total_flits(self) -> int:
        return self.request.flits_sent + self.response.flits_sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SerialLink {self.link_id}>"
