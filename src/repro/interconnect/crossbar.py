"""The logic-base crossbar that routes packets between links and vaults.

The HMC's main internal interconnect (paper Figure 2) is modeled as a
constant-latency switch with per-vault-port occupancy: each port can accept
one packet per ``port_cycle`` cycles, which bounds the per-vault injection
rate without simulating a full flit-level network (the crossbar in real HMC
silicon is heavily over-provisioned relative to the links, so contention is
rare; the counter below lets experiments confirm that).
"""

from __future__ import annotations

from typing import List


class Crossbar:
    """Constant-latency, port-occupancy crossbar."""

    def __init__(self, vaults: int, latency: int, port_cycle: int = 1) -> None:
        if vaults < 1:
            raise ValueError("vaults must be >= 1")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if port_cycle < 1:
            raise ValueError("port_cycle must be >= 1")
        self.vaults = vaults
        self.latency = latency
        self.port_cycle = port_cycle
        self._port_busy: List[int] = [0] * vaults
        self.traversals = 0
        self.port_conflicts = 0

    def route(self, at: int, vault: int) -> int:
        """Route one packet toward ``vault`` starting at cycle ``at``.
        Returns the delivery cycle at the vault port."""
        if not 0 <= vault < self.vaults:
            raise ValueError(f"vault {vault} out of range")
        start = at
        if self._port_busy[vault] > at:
            start = self._port_busy[vault]
            self.port_conflicts += 1
        self._port_busy[vault] = start + self.port_cycle
        self.traversals += 1
        return start + self.latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Crossbar {self.vaults}p lat={self.latency} n={self.traversals}>"
