"""Fabric-system assembly: N stream cores + routed multi-cube HMC fabric.

:class:`FabricSystem` is the multi-cube counterpart of
:class:`~repro.system.System`: one engine, one :class:`HMCDevice` per cube
(CAMPS - or any scheme - running per-vault in every cube), a
:class:`~repro.fabric.host.FabricHost` multiplexing all stream cores onto
the fabric, and the same observability surface (tracer wiring, epoch time
series, telemetry duck-typing) so campaign workers, RunReports and the
``/metrics`` endpoint work unchanged.

``run()`` returns a plain :class:`~repro.system.SimulationResult` with every
summary field aggregated fabric-wide, plus ``extra["fabric"]`` carrying the
hop-count histogram, per-cube conflict statistics, router forwarding
counters and inter-cube link utilization.  A one-cube fabric reproduces the
single-cube ``System`` result field for field (including the event count) -
the degenerate-fabric parity the pinned hot-path digests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cpu.core import Core, CoreParams
from repro.fabric.host import FabricHost
from repro.fabric.topology import FabricConfig, Topology
from repro.hmc.device import HMCDevice
from repro.system import DirectPort, SimulationResult
from repro.sim.backend import engine_class as backend_engine_class
from repro.sim.engine import Engine
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class FabricSystemConfig:
    """Everything needed to build one simulated fabric."""

    fabric: FabricConfig = field(default_factory=FabricConfig)
    core_params: CoreParams = field(default_factory=CoreParams)
    scheme: str = "camps-mod"
    #: see SystemConfig.stats_warmup_cycles
    stats_warmup_cycles: Optional[int] = None
    #: see SystemConfig.timeseries_epoch
    timeseries_epoch: Optional[int] = None
    #: keep every completed MemoryRequest for post-run analysis
    record_requests: bool = False

    @property
    def hmc(self):
        """The per-cube HMC config (convenience for config-digest readers)."""
        return self.fabric.hmc

    @property
    def scheme_name(self) -> str:  # pragma: no cover - trivial
        return self.scheme


class FabricSystem:
    """One simulated multi-cube machine: build, run once, read the result."""

    def __init__(
        self,
        traces: List[Trace],
        config: Optional[FabricSystemConfig] = None,
        workload: str = "custom",
        scheme_kwargs: Optional[Dict[str, Any]] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        if not traces:
            raise ValueError("need at least one core trace")
        self.config = config or FabricSystemConfig()
        fabric = self.config.fabric
        self.fabric = fabric
        self.workload = workload
        # Backend seam (see repro.sim.backend): same selection as System.
        self.engine = backend_engine_class()()
        self.topology = Topology(fabric)
        self.devices: List[HMCDevice] = [
            HMCDevice(
                fabric.hmc,
                self.engine,
                scheme=self.config.scheme,
                scheme_kwargs=scheme_kwargs,
            )
            for _ in range(fabric.cubes)
        ]
        self.host = FabricHost(
            fabric,
            self.engine,
            self.devices,
            self.topology,
            record_requests=self.config.record_requests,
        )
        port = DirectPort(self.host, self.engine)
        # Post-LLC front-end, no recording: the host is the last holder of a
        # delivered request, so the pool recycles (same proof as System).
        if not self.config.record_requests:
            self.host.recycle_requests = True
        self.cores: List[Core] = [
            Core(
                core_id=i,
                engine=self.engine,
                mem=port,
                gaps=t.gaps,
                addrs=t.addrs,
                writes=t.writes,
                params=self.config.core_params,
            )
            for i, t in enumerate(traces)
        ]
        self.tracer = tracer
        if tracer is not None:
            tracer.wire_fabric(self)
        self.timeseries = None
        if self.config.timeseries_epoch is not None:
            from repro.obs.timeseries import TimeseriesSampler  # local: keep
            # the unsampled build path free of the obs timeseries import

            self.timeseries = TimeseriesSampler(
                self.engine, epoch=self.config.timeseries_epoch
            )
            self.timeseries.attach_fabric(self)
        self._ran = False

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Run to completion (all stream cores retire all trace records)."""
        if self._ran:
            raise RuntimeError("FabricSystem.run() may only be called once")
        self._ran = True
        if self.config.stats_warmup_cycles is not None:
            self.engine.schedule(
                self.config.stats_warmup_cycles,
                self._warmup_boundary,
                priority=-10,
                weak=True,
            )
        if self.timeseries is not None:
            self.timeseries.start()
        for core in self.cores:
            core.start()
        self.engine.run(max_events=max_events)
        stuck = [c.core_id for c in self.cores if not c.done]
        if stuck:
            raise RuntimeError(
                f"fabric simulation drained with unfinished cores {stuck}; "
                f"events={self.engine.events_fired}"
            )
        for dev in self.devices:
            dev.finalize()
        return self._collect()

    def _warmup_boundary(self) -> None:
        for dev in self.devices:
            dev.reset_statistics()
        self.host.reset_statistics()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _collect(self) -> SimulationResult:
        devices = self.devices
        host = self.host
        fabric = self.fabric

        demand = sum(dev.demand_accesses for dev in devices)
        conflicts = sum(dev.row_conflicts for dev in devices)
        buf_hits = sum(dev.buffer_hits for dev in devices)
        accesses = demand + buf_hits
        # prefetch accuracies pool the raw used/unused counts across every
        # cube's vaults (a ratio-of-sums, not a mean of per-cube ratios)
        rows_used = rows_unused = lines_ins = lines_used = 0
        for dev in devices:
            for vc in dev.vaults:
                if vc.buffer is not None:
                    rows_used += vc.buffer.rows_retired_used
                    rows_unused += vc.buffer.rows_retired_unused
                    lines_ins += vc.buffer.lines_inserted
                    lines_used += vc.buffer.lines_used
        rows_n = rows_used + rows_unused

        breakdown: Dict[str, float] = {}
        for dev in devices:
            for key, value in dev.energy.breakdown_pj().items():
                breakdown[key] = breakdown.get(key, 0.0) + value
        hop_flits = host.hop_flits()
        if fabric.cubes > 1:
            # the key only exists on real fabrics: a one-cube breakdown must
            # stay dict-equal to the single-cube System's
            breakdown["fabric_hops"] = hop_flits * fabric.hop_energy_pj
        energy_pj = sum(breakdown.values())

        extra: Dict[str, Any] = {
            "events_fired": self.engine.events_fired,
            "core_stall_cycles": [c.stall_cycles for c in self.cores],
            "core_rob_stalls": [c.rob_stalls for c in self.cores],
            "core_mlp_stalls": [c.mlp_stalls for c in self.cores],
        }
        hits = empties = bank_conflicts = 0
        tsv_util = 0.0
        nvaults = 0
        for dev in devices:
            for vc in dev.vaults:
                nvaults += 1
                tsv_util += vc.tsv_bus.utilization(self.engine.now)
                for b in vc.banks:
                    hits += b.hits
                    empties += b.empties
                    bank_conflicts += b.conflicts
        extra["bank_outcomes"] = {
            "hits": hits,
            "empties": empties,
            "conflicts": bank_conflicts,
        }
        extra["tsv_bus_utilization"] = (
            tsv_util / nvaults if self.engine.now else 0.0
        )
        pf0 = devices[0].vaults[0].prefetcher
        if hasattr(pf0, "utilization_prefetches"):
            extra["utilization_prefetches"] = sum(
                vc.prefetcher.utilization_prefetches
                for dev in devices
                for vc in dev.vaults
            )
            extra["conflict_prefetches"] = sum(
                vc.prefetcher.conflict_prefetches
                for dev in devices
                for vc in dev.vaults
            )
        if hasattr(pf0, "degree"):
            extra["mmd_final_degrees"] = [
                vc.prefetcher.degree for dev in devices for vc in dev.vaults
            ]
        if host.faults_enabled:
            extra["link_faults"] = host.link_fault_summary()
        if self.tracer is not None:
            extra["trace_summary"] = self.tracer.summary()
        if self.timeseries is not None:
            extra["timeseries"] = self.timeseries.to_payload()
        extra["fabric"] = self._fabric_extra(hop_flits)

        return SimulationResult(
            scheme=self.config.scheme,
            workload=self.workload,
            cycles=self.engine.now,
            core_ipc=[c.ipc for c in self.cores],
            core_instructions=[c.instr for c in self.cores],
            conflict_rate=conflicts / accesses if accesses else 0.0,
            row_conflicts=conflicts,
            demand_accesses=demand,
            buffer_hits=buf_hits,
            prefetches_issued=sum(dev.prefetches_issued() for dev in devices),
            row_accuracy=rows_used / rows_n if rows_n else 0.0,
            line_accuracy=lines_used / lines_ins if lines_ins else 0.0,
            mean_memory_latency=host.mean_memory_latency(),
            mean_read_latency=host.mean_read_latency(),
            energy_pj=energy_pj,
            energy_breakdown=breakdown,
            link_utilization=host.link_utilization(),
            extra=extra,
        )

    def _fabric_extra(self, hop_flits: int) -> Dict[str, Any]:
        host = self.host
        fabric = self.fabric
        per_cube = []
        for c, dev in enumerate(self.devices):
            router = host.routers[c]
            per_cube.append(
                {
                    "cube": c,
                    "demand_accesses": dev.demand_accesses,
                    "row_conflicts": dev.row_conflicts,
                    "buffer_hits": dev.buffer_hits,
                    "conflict_rate": dev.conflict_rate(),
                    "prefetches_issued": dev.prefetches_issued(),
                    "crossbar_traversals": dev.crossbar.traversals,
                    "router": router.counters(),
                }
            )
        cycles = self.engine.now
        fabric_links = {
            f"link{l.link_id}": {
                "cubes": [l.cube_a, l.cube_b],
                "flits": l.total_flits,
                "busy_cycles": l.total_busy_cycles,
                "utilization": (
                    (l.request.utilization(cycles) + l.response.utilization(cycles))
                    / 2.0
                    if cycles
                    else 0.0
                ),
            }
            for l in host.fabric_links
        }
        return {
            "topology": fabric.topology,
            "cubes": fabric.cubes,
            "hop_latency": fabric.hop_latency,
            "hop_histogram": host.hop_histogram(),
            "mean_hops": host.mean_hops(),
            "hop_flits": hop_flits,
            "fabric_link_utilization": host.fabric_link_utilization(),
            "fabric_links": fabric_links,
            "per_cube": per_cube,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FabricSystem {self.fabric.spec} scheme={self.config.scheme} "
            f"cores={len(self.cores)}>"
        )
