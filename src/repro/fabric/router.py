"""Per-cube packet routing over inter-cube serial links.

Each cube carries a :class:`Router`: packets whose home cube is elsewhere
are relayed over an inter-cube :class:`FabricLink` toward their next hop,
paying the per-hop forwarding latency (SerDes re-serialization + switch
traversal), the link's serialization occupancy (so inter-cube links are a
real contention point), and per-flit hop energy.  Responses retrace the
request path back to the fabric's host attach point.

Inter-cube links reuse :class:`~repro.interconnect.link.SerialLink`
wholesale, including the fault/retry machinery: the same
:class:`~repro.faults.LinkFaultConfig` that drives ``--ber/--drop`` on the
host links is attached per fabric link, and because fault RNG streams are
keyed by ``(seed, link_id, direction)``, fabric links get their own id
namespace (:data:`FABRIC_LINK_ID_BASE` upward) so every hop draws an
independent error stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults import LinkFaultConfig
from repro.interconnect.link import LinkDirection, SerialLink
from repro.request import MemoryRequest
from repro.sim.engine import Engine

#: inter-cube link ids start here; host links use 0..links-1, and the fault
#: injector keys its RNG streams by link id, so the namespaces must not
#: collide or a fabric hop would replay the host link's error sequence
FABRIC_LINK_ID_BASE = 100


class FabricLink(SerialLink):
    """A full-duplex inter-cube link between cubes ``cube_a`` and ``cube_b``.

    The ``request`` direction carries ``a -> b`` traffic and ``response``
    carries ``b -> a`` - the directions are symmetric serialization servers,
    the names just reuse the base class's pair.
    """

    def __init__(
        self,
        link_id: int,
        cube_a: int,
        cube_b: int,
        bytes_per_cycle: float,
        serdes_latency: int,
        flit_bytes: int,
        faults: Optional[LinkFaultConfig] = None,
    ) -> None:
        super().__init__(link_id, bytes_per_cycle, serdes_latency, flit_bytes, faults)
        self.cube_a = cube_a
        self.cube_b = cube_b

    def direction_to(self, cube: int) -> LinkDirection:
        """The outgoing direction for traffic headed to endpoint ``cube``."""
        if cube == self.cube_b:
            return self.request
        if cube == self.cube_a:
            return self.response
        raise ValueError(f"cube {cube} is not an endpoint of {self!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FabricLink {self.link_id} q{self.cube_a}<->q{self.cube_b}>"


class Router:
    """One cube's packet switch.

    Local packets are injected into the cube's device; everything else is
    relayed one hop toward its destination.  Forwarding charges
    ``hop_latency`` before the outgoing link's serialization starts, so a
    relayed packet pays (hop latency + wire occupancy + SerDes flight) per
    hop - and contends with every other packet crossing that link.
    """

    __slots__ = (
        "cube_id",
        "engine",
        "device",
        "next_hop",
        "exit_cube",
        "hop_latency",
        "ports",
        "peers",
        "host_tx",
        "_req_bytes",
        "_resp_bytes",
        "local_requests",
        "forwarded_requests",
        "forwarded_responses",
        "hop_flits",
    )

    def __init__(
        self,
        cube_id: int,
        engine: Engine,
        device,
        next_hop: List[int],
        hop_latency: int,
        req_bytes: Tuple[int, int],
        resp_bytes: Tuple[int, int],
        exit_cube: int = 0,
    ) -> None:
        self.cube_id = cube_id
        self.engine = engine
        self.device = device
        #: next_hop[dst] = neighbor toward dst (this cube's row of the table)
        self.next_hop = next_hop
        #: where responses leave the fabric (the host attach point)
        self.exit_cube = exit_cube
        self.hop_latency = hop_latency
        #: outgoing LinkDirection per neighbor cube
        self.ports: Dict[int, LinkDirection] = {}
        #: neighbor Router per neighbor cube
        self.peers: Dict[int, "Router"] = {}
        #: the host-side response transmitter; used only at the exit cube
        self.host_tx = None
        self._req_bytes = req_bytes
        self._resp_bytes = resp_bytes
        self.local_requests = 0
        self.forwarded_requests = 0
        self.forwarded_responses = 0
        #: flits this router placed onto inter-cube links (replays included);
        #: the fabric energy model charges each at hop_energy_pj
        self.hop_flits = 0

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def receive_request(self, req: MemoryRequest) -> None:
        """A request packet materializes at this cube at ``engine.now``."""
        if req.cube == self.cube_id:
            self.local_requests += 1
            self.device.inject(req, self.engine.now)
            return
        nxt = self.next_hop[req.cube]
        arrival, flits = self.ports[nxt].send(
            self.engine.now + self.hop_latency, self._req_bytes[req.is_write]
        )
        self.forwarded_requests += 1
        self.hop_flits += flits
        self.engine.call_at(arrival, self.peers[nxt].receive_request, req)

    def receive_response(self, req: MemoryRequest) -> None:
        """A response packet materializes at this cube at ``engine.now``."""
        if self.cube_id == self.exit_cube:
            self.host_tx(req)
            return
        nxt = self.next_hop[self.exit_cube]
        arrival, flits = self.ports[nxt].send(
            self.engine.now + self.hop_latency, self._resp_bytes[req.is_write]
        )
        self.forwarded_responses += 1
        self.hop_flits += flits
        self.engine.call_at(arrival, self.peers[nxt].receive_response, req)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {
            "local_requests": self.local_requests,
            "forwarded_requests": self.forwarded_requests,
            "forwarded_responses": self.forwarded_responses,
            "hop_flits": self.hop_flits,
        }

    def reset_statistics(self) -> None:
        self.local_requests = 0
        self.forwarded_requests = 0
        self.forwarded_responses = 0
        self.hop_flits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Router q{self.cube_id} fwd={self.forwarded_requests}"
            f"/{self.forwarded_responses}>"
        )
