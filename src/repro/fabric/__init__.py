"""Routed multi-cube HMC fabric.

Generalizes :mod:`repro.hmc` + :mod:`repro.interconnect` from one device to
a fabric of 1-8 cubes in daisy-chain, ring, or star (host fan-out)
topologies: cube-select address bits, static shortest-path routing, per-hop
latency/energy/contention over inter-cube serial links (with the standard
fault/retry machinery per hop), and CAMPS running per-vault in every cube.

Entry points: :class:`FabricConfig` (``FabricConfig.from_spec("chain:4")``)
describes the fabric, :class:`~repro.fabric.system.FabricSystem` simulates
it, and :func:`~repro.workloads.multistream.build_stream_traces` supplies
the multi-stream workloads.  See ``docs/API.md`` (Fabric) and
``examples/fabric_study.py``.
"""

from repro.fabric.address import FabricAddressMapping, FabricDecodedAddress
from repro.fabric.host import FabricHost
from repro.fabric.router import FABRIC_LINK_ID_BASE, FabricLink, Router
from repro.fabric.system import FabricSystem, FabricSystemConfig
from repro.fabric.topology import (
    MAX_CUBES,
    TOPOLOGIES,
    FabricConfig,
    Topology,
    parse_topology,
)

__all__ = [
    "FABRIC_LINK_ID_BASE",
    "MAX_CUBES",
    "TOPOLOGIES",
    "FabricAddressMapping",
    "FabricConfig",
    "FabricDecodedAddress",
    "FabricHost",
    "FabricLink",
    "FabricSystem",
    "FabricSystemConfig",
    "Router",
    "Topology",
    "parse_topology",
]
