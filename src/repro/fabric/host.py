"""Fabric-side host controller: N request streams onto 1-8 routed cubes.

:class:`FabricHost` generalizes :class:`~repro.hmc.host.HostController` to a
multi-cube fabric.  Every request is decoded once (cube + vault + bank + row
+ column, mirroring :class:`~repro.fabric.address.FabricAddressMapping`),
serialized onto a host serial link, and either injected straight into its
home cube (the link's far end under star fan-out, or cube 0 when the home
cube IS cube 0 under chain/ring) or handed to the entry cube's
:class:`~repro.fabric.router.Router` for hop-by-hop forwarding.  Responses
retrace the path and land in the same latency histograms the single-cube
host feeds.

**Single-cube parity contract.**  With one cube every topology degenerates
to exactly the single-cube controller: vault-interleaved link selection,
direct crossbar injection, identical event shape (one engine event per
request leg) and identical arithmetic - the fabric path calls the reference
``LinkDirection.send`` / ``HMCDevice.inject`` / ``Histogram.add`` methods,
which the single-cube hot path's inlined copies are documented to be
bit-identical to.  ``tests/test_fabric_system.py`` pins a one-cube
``FabricSystem`` against ``System`` field for field, including the event
count.
"""

from __future__ import annotations

from typing import Callable, List

from repro.fabric.address import FabricAddressMapping
from repro.fabric.router import FABRIC_LINK_ID_BASE, FabricLink, Router
from repro.fabric.topology import FabricConfig, Topology
from repro.hmc.device import HMCDevice
from repro.interconnect.link import SerialLink
from repro.interconnect.packet import PacketKind, packet_bytes
from repro.obs.hooks import noop
from repro.request import MemoryRequest
from repro.sim.engine import Engine
from repro.sim.stats import StatGroup


class FabricHost:
    """The processor-side endpoint of a routed multi-cube fabric."""

    def __init__(
        self,
        fabric: FabricConfig,
        engine: Engine,
        devices: List[HMCDevice],
        topology: Topology,
        record_requests: bool = False,
    ) -> None:
        if len(devices) != fabric.cubes:
            raise ValueError(
                f"fabric declares {fabric.cubes} cubes but got {len(devices)} devices"
            )
        cfg = fabric.hmc
        self.fabric = fabric
        self.config = cfg
        self.engine = engine
        self.devices = devices
        self.topology = topology
        self.record_requests = record_requests
        self.completed_requests = []  # populated only when recording
        self.mapping = FabricAddressMapping(cfg, fabric.cubes)
        bpc = cfg.link_bytes_per_cycle
        self.links: List[SerialLink] = [
            SerialLink(i, bpc, cfg.serdes_latency, cfg.flit_bytes, cfg.faults)
            for i in range(cfg.links)
        ]
        self._tracer = None
        self._emit_link_tx = noop
        #: see HostController.recycle_requests; FabricSystem enables this
        #: under the same single-ownership proof
        self.recycle_requests = False
        line = cfg.line_bytes
        hdr = cfg.request_header_bytes
        self._req_bytes = (
            packet_bytes(PacketKind.READ_REQUEST, line, hdr),
            packet_bytes(PacketKind.WRITE_REQUEST, line, hdr),
        )
        self._resp_bytes = (
            packet_bytes(PacketKind.READ_RESPONSE, line, hdr),
            packet_bytes(PacketKind.WRITE_RESPONSE, line, hdr),
        )
        # Decode constants mirrored out of the fabric mapping (send() runs
        # the shift/mask arithmetic inline, same shape as HostController).
        m = self.mapping
        self._q_shift, self._q_mask, self._q_cubes = m.cube_shift, m.cube_mask, m.cubes
        self._v_shift, self._v_mask = m.vault_shift, m.vault_mask
        self._b_shift, self._b_mask = m.bank_shift, m.bank_mask
        self._c_shift, self._c_mask = m.column_shift, m.column_mask
        self._r_shift = m.row_shift
        self._nlinks = len(self.links)
        self._resp_xbar = cfg.crossbar_latency
        #: star fan-out selects links by cube; every other shape (and any
        #: one-cube fabric) keeps the vault-interleaved assignment so a
        #: degenerate fabric is link-for-link identical to HostController
        self._link_by_cube = fabric.topology == "star" and fabric.cubes > 1
        self._energy = [dev.energy for dev in devices]
        self._entry = [topology.entry_cube(c) for c in range(fabric.cubes)]
        self._host_hops = topology.host_hops

        # ---- inter-cube plumbing -------------------------------------
        self.fabric_links: List[FabricLink] = [
            FabricLink(
                FABRIC_LINK_ID_BASE + k,
                a,
                b,
                bpc,
                cfg.serdes_latency,
                cfg.flit_bytes,
                cfg.faults,
            )
            for k, (a, b) in enumerate(topology.edges)
        ]
        self.routers: List[Router] = [
            Router(
                c,
                engine,
                devices[c],
                topology.next_hop[c],
                fabric.hop_latency,
                self._req_bytes,
                self._resp_bytes,
                exit_cube=0,
            )
            for c in range(fabric.cubes)
        ]
        for link in self.fabric_links:
            a, b = link.cube_a, link.cube_b
            self.routers[a].ports[b] = link.direction_to(b)
            self.routers[a].peers[b] = self.routers[b]
            self.routers[b].ports[a] = link.direction_to(a)
            self.routers[b].peers[a] = self.routers[a]
        for router in self.routers:
            router.host_tx = self._tx_response
        for c, dev in enumerate(devices):
            dev.set_deliver_fn(self._make_responder(c))

        self.stats = StatGroup("host")
        self._c_reads = self.stats.counter("reads_sent")
        self._c_writes = self.stats.counter("writes_sent")
        self._c_done = self.stats.counter("completions")
        self.latency_hist = self.stats.histogram("mem_latency", nbins=64, bin_width=32)
        self.read_latency_hist = self.stats.histogram(
            "read_latency", nbins=64, bin_width=32
        )
        #: link traversals per request (host link + inter-cube forwards);
        #: 16 one-cycle bins cover the deepest 8-cube chain (9 hops)
        self.hop_hist = self.stats.histogram("host_hops", nbins=16, bin_width=1)

    # ------------------------------------------------------------------
    # Instrumentation (see repro.obs.hooks)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._emit_link_tx = tracer.link_tx if tracer is not None else noop

    # ------------------------------------------------------------------
    # Request path (core -> fabric)
    # ------------------------------------------------------------------
    def send(self, req: MemoryRequest) -> None:
        """Decode, packetize and transmit one request at ``engine.now``."""
        engine = self.engine
        now = engine.now
        req.host_cycle = now
        addr = req.addr
        req.cube = cube = ((addr >> self._q_shift) & self._q_mask) % self._q_cubes
        req.vault = vault = (addr >> self._v_shift) & self._v_mask
        req.bank = (addr >> self._b_shift) & self._b_mask
        req.row = addr >> self._r_shift
        req.column = (addr >> self._c_shift) & self._c_mask
        is_write = req.is_write
        nbytes = self._req_bytes[is_write]
        if self._link_by_cube:
            link = self.links[cube % self._nlinks]
        else:
            link = self.links[vault % self._nlinks]
        arrival, flits = link.request.send(now, nbytes)
        emit = self._emit_link_tx
        if emit is not noop:
            emit(link.link_id, "req", nbytes, now, arrival)
        entry = self._entry[cube]
        self._energy[entry].link_flits += flits
        self.hop_hist.add(self._host_hops[cube])
        if is_write:
            self._c_writes.value += 1
        else:
            self._c_reads.value += 1
        if cube == entry:
            # The far end of the host link is the home cube: inject straight
            # into its crossbar (identical event shape to the one-cube host).
            self.devices[cube].inject(req, arrival)
        else:
            engine.call_at(arrival, self.routers[entry].receive_request, req)

    # ------------------------------------------------------------------
    # Response path (fabric -> core)
    # ------------------------------------------------------------------
    def _make_responder(self, cube: int) -> Callable[[MemoryRequest, int], None]:
        """Build cube ``cube``'s deliver fn: charge the response crossbar,
        then either transmit on the host link (the cube is its own fabric
        exit) or hand the packet to the cube's router for the trip back."""
        engine = self.engine
        resp_xbar = self._resp_xbar
        if self._entry[cube] == cube:
            target = self._tx_response
        else:
            target = self.routers[cube].receive_response

        def respond(req: MemoryRequest, ready: int) -> None:
            now = engine.now
            t = ready + resp_xbar
            engine.call_at(t if t > now else now, target, req)

        return respond

    def _tx_response(self, req: MemoryRequest) -> None:
        engine = self.engine
        now = engine.now
        nbytes = self._resp_bytes[req.is_write]
        if self._link_by_cube:
            link = self.links[req.cube % self._nlinks]
        else:
            link = self.links[req.vault % self._nlinks]
        d = link.response
        arrival, flits = d.send(now, nbytes)
        emit = self._emit_link_tx
        if emit is not noop:
            emit(link.link_id, "resp", nbytes, now, arrival)
        self._energy[self._entry[req.cube]].link_flits += flits
        engine.call_at(arrival, self._deliver, req)

    def _deliver(self, req: MemoryRequest) -> None:
        now = self.engine.now
        req.complete_cycle = now
        self._c_done.value += 1
        lat = now - req.issue_cycle
        self.latency_hist.add(lat)
        if not req.is_write:
            self.read_latency_hist.add(lat)
        if self.record_requests:
            self.completed_requests.append(req)
        cb = req.callback
        if cb is not None:
            cb(req)
        if self.recycle_requests:
            req.callback = None
            req.meta = None
            MemoryRequest._pool.append(req)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Warmup boundary: zero latency/hop histograms, link activity
        (traffic + retry counters, see SerialLink.reset_statistics) and
        router forwarding counters."""
        self.latency_hist.reset()
        self.read_latency_hist.reset()
        self.hop_hist.reset()
        for link in self.links:
            link.reset_statistics()
        for link in self.fabric_links:
            link.reset_statistics()
        for router in self.routers:
            router.reset_statistics()

    @property
    def outstanding(self) -> int:
        sent = self._c_reads.value + self._c_writes.value
        return sent - self._c_done.value

    def mean_memory_latency(self) -> float:
        return self.latency_hist.mean

    def mean_read_latency(self) -> float:
        return self.read_latency_hist.mean

    def mean_hops(self) -> float:
        """Mean link traversals per request (1.0 in a one-cube fabric)."""
        return self.hop_hist.mean

    def hop_histogram(self) -> dict:
        """``{hops: requests}`` over the populated bins."""
        return {
            h: int(n)
            for h, n in enumerate(self.hop_hist.counts.tolist())
            if n
        }

    @property
    def faults_enabled(self) -> bool:
        """True when any host or fabric link direction carries a retry buffer."""
        return any(
            d.retry is not None
            for link in (*self.links, *self.fabric_links)
            for d in (link.request, link.response)
        )

    def link_fault_summary(self) -> dict:
        """Aggregated retry-buffer counters across host AND fabric links
        (same shape as HostController.link_fault_summary; fabric links
        appear as ``link100`` upward)."""
        per_link = {}
        totals: dict = {}
        for link in (*self.links, *self.fabric_links):
            counters = link.fault_counters()
            if counters is None:
                continue
            per_link[f"link{link.link_id}"] = counters
            for key, value in counters.items():
                if key == "max_episode_replays":
                    totals[key] = max(totals.get(key, 0), value)
                else:
                    totals[key] = totals.get(key, 0) + value
        if not per_link:
            return {}
        totals["per_link"] = per_link
        return totals

    def link_utilization(self) -> float:
        """Average serialization utilization across the HOST links (the
        single-cube-comparable metric; fabric links report separately)."""
        cycles = self.engine.now
        if not cycles:
            return 0.0
        dirs = [d for l in self.links for d in (l.request, l.response)]
        return sum(d.utilization(cycles) for d in dirs) / len(dirs)

    def fabric_link_utilization(self) -> float:
        """Average serialization utilization across inter-cube links
        (0.0 when the topology has none)."""
        cycles = self.engine.now
        dirs = [d for l in self.fabric_links for d in (l.request, l.response)]
        if not cycles or not dirs:
            return 0.0
        return sum(d.utilization(cycles) for d in dirs) / len(dirs)

    def hop_flits(self) -> int:
        """Total flits carried by inter-cube links (pass-through included)."""
        return sum(r.hop_flits for r in self.routers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FabricHost {self.fabric.spec} links={len(self.links)}"
            f"+{len(self.fabric_links)} outstanding={self.outstanding}>"
        )
