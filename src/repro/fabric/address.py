"""Cube-select address extension for multi-cube fabrics.

:class:`FabricAddressMapping` extends the single-cube
:class:`~repro.hmc.address.AddressMapping` with a *cube* field: the
cube-select bits sit directly above the highest movable field (column /
vault / bank) and below the rank/row bits, for every entry in
``MAPPING_ORDERS``.  That placement keeps the property CAMPS depends on -
all 16 lines of one DRAM row stay inside one vault of one cube, so a
whole-row prefetch still captures the stream's spatial locality - while
interleaving consecutive *row groups* across cubes for fabric-level load
balance (the Yoon et al. row-buffer-locality argument, applied one level
up).

Cube counts need not be powers of two (a 3-cube chain is legal): decode
folds the extracted field modulo ``cubes`` so every address maps to a real
cube; :meth:`encode` only accepts in-range cube ids, so encode -> decode
round-trips exactly.

With ``cubes == 1`` there are zero cube bits and every shift/mask equals
the base mapping's - a one-cube fabric decodes byte-identically to the
single-cube path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig


@dataclass(frozen=True)
class FabricDecodedAddress:
    """The coordinates of one cache line inside the fabric."""

    cube: int
    vault: int
    bank: int
    row: int
    column: int

    def __str__(self) -> str:
        return f"q{self.cube}.v{self.vault}.b{self.bank}.r{self.row}.c{self.column}"


class FabricAddressMapping(AddressMapping):
    """Address <-> (cube, vault, bank, row, column) mapping.

    Field validation (including the clear unknown-``order`` ValueError
    listing ``MAPPING_ORDERS``) is inherited from the base mapping; this
    class splices ``ceil(log2(cubes))`` cube bits in at the pre-rank shift
    and lifts the rank/row shifts above them.
    """

    def __init__(
        self, config: HMCConfig, cubes: int = 1, order: Optional[str] = None
    ) -> None:
        if cubes < 1:
            raise ValueError(f"cubes must be >= 1, got {cubes}")
        super().__init__(config, order=order)
        self.cubes = cubes
        self.cube_bits = (cubes - 1).bit_length()
        self.cube_shift = self.rank_shift
        self.cube_mask = (1 << self.cube_bits) - 1
        self.rank_shift += self.cube_bits
        self.row_shift += self.cube_bits

    # ------------------------------------------------------------------
    # Scalar interface
    # ------------------------------------------------------------------
    def cube_of(self, addr: int) -> int:
        """Home cube of a byte address."""
        return ((addr >> self.cube_shift) & self.cube_mask) % self.cubes

    def decode(self, addr: int) -> FabricDecodedAddress:
        """Decode a byte address into fabric coordinates."""
        if addr < 0:
            raise ValueError(f"address must be non-negative, got {addr}")
        return FabricDecodedAddress(
            cube=((addr >> self.cube_shift) & self.cube_mask) % self.cubes,
            vault=(addr >> self.vault_shift) & self.vault_mask,
            bank=(addr >> self.bank_shift) & self.bank_mask,
            row=addr >> self.row_shift,
            column=(addr >> self.column_shift) & self.column_mask,
        )

    def encode(
        self,
        vault: int,
        bank: int,
        row: int,
        column: int = 0,
        cube: int = 0,
    ) -> int:
        """Build the byte address of a line from its fabric coordinates."""
        if not 0 <= cube < self.cubes:
            raise ValueError(f"cube {cube} out of range (fabric has {self.cubes})")
        base = super().encode(vault, bank, 0, column)
        return base | (cube << self.cube_shift) | (row << self.row_shift)

    # ------------------------------------------------------------------
    # Vectorized interface (trace preprocessing)
    # ------------------------------------------------------------------
    def decode_many(
        self, addrs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized decode; returns (cube, vault, bank, row, column)."""
        a = np.asarray(addrs, dtype=np.int64)
        cube = ((a >> self.cube_shift) & self.cube_mask) % self.cubes
        vault = (a >> self.vault_shift) & self.vault_mask
        bank = (a >> self.bank_shift) & self.bank_mask
        row = a >> self.row_shift
        column = (a >> self.column_shift) & self.column_mask
        return cube, vault, bank, row, column

    def encode_many(
        self,
        vault: np.ndarray,
        bank: np.ndarray,
        row: np.ndarray,
        column: np.ndarray,
        cube: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized encode of coordinate arrays into byte addresses."""
        out = (
            (np.asarray(row, dtype=np.int64) << self.row_shift)
            | (np.asarray(bank, dtype=np.int64) << self.bank_shift)
            | (np.asarray(vault, dtype=np.int64) << self.vault_shift)
            | (np.asarray(column, dtype=np.int64) << self.column_shift)
        )
        if cube is not None:
            out |= np.asarray(cube, dtype=np.int64) << self.cube_shift
        return out

    def relocate_home(self, addrs: np.ndarray, cube: int) -> np.ndarray:
        """Splice a single-cube address stream into one cube's slice.

        The bits above ``cube_shift`` move up by ``cube_bits`` and the home
        cube id is inserted, so a stream generated against a one-cube
        address space lands entirely in ``cube`` while keeping its exact
        (vault, bank, row, column) footprint - the locality-aware stream
        placement the multi-stream workload spec uses.  With one cube this
        is the identity.
        """
        if not 0 <= cube < self.cubes:
            raise ValueError(f"cube {cube} out of range (fabric has {self.cubes})")
        a = np.asarray(addrs, dtype=np.int64)
        if self.cube_bits == 0:
            return a.copy()
        shift = self.cube_shift
        low = a & ((1 << shift) - 1)
        high = a >> shift
        return (high << (shift + self.cube_bits)) | (cube << shift) | low

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FabricAddressMapping cubes={self.cubes} "
            f"Qu[{self.cube_shift}+{self.cube_bits}] order={self.order}>"
        )
