"""Fabric topology descriptions and static routing tables.

Three inter-cube topologies, mirroring the deployments Hadidi et al.
characterize for 3D-stacked memory networks:

``chain``
    Daisy chain ``0 - 1 - ... - n-1``; the host attaches to cube 0 and
    every non-local packet is forwarded hop by hop down the chain.
``ring``
    The chain plus a closing edge ``n-1 - 0``; packets take the shorter
    direction around the ring.
``star``
    Host fan-out: every cube hangs directly off the host's serial links
    and there are no inter-cube edges at all.

Routing is static shortest-path (BFS with sorted neighbor order, so the
next-hop tables are fully deterministic), computed once at construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.hmc.config import HMCConfig

TOPOLOGIES: Tuple[str, ...] = ("chain", "ring", "star")
MAX_CUBES = 8


def parse_topology(spec: str) -> Tuple[str, int]:
    """Parse a ``name:cubes`` CLI spec such as ``chain:4``.

    A bare name means one cube (every topology degenerates to the plain
    single-cube system).  Raises ``ValueError`` with the valid choices on
    anything malformed.
    """
    text = spec.strip().lower()
    name, sep, count = text.partition(":")
    if name not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {name!r}; available: {', '.join(TOPOLOGIES)}"
        )
    if not sep:
        cubes = 1
    else:
        try:
            cubes = int(count)
        except ValueError:
            raise ValueError(
                f"bad cube count {count!r} in topology spec {spec!r}"
            ) from None
    if not 1 <= cubes <= MAX_CUBES:
        raise ValueError(
            f"cube count must be between 1 and {MAX_CUBES}, got {cubes}"
        )
    return name, cubes


@dataclass(frozen=True)
class FabricConfig:
    """A fabric of identical cubes plus the inter-cube hop cost model.

    ``hop_latency`` is the per-hop forwarding delay in cycles (SerDes
    re-serialization plus switch traversal) charged each time a packet is
    relayed through or out of a cube; ``hop_energy_pj`` is the per-flit
    energy of an inter-cube hop, charged on top of the host-link flit
    energy already modeled by :class:`~repro.dram.energy.EnergyModel`.
    """

    topology: str = "chain"
    cubes: int = 1
    hmc: HMCConfig = field(default_factory=HMCConfig)
    hop_latency: int = 6
    hop_energy_pj: float = 48.0

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"available: {', '.join(TOPOLOGIES)}"
            )
        if not 1 <= self.cubes <= MAX_CUBES:
            raise ValueError(
                f"cube count must be between 1 and {MAX_CUBES}, got {self.cubes}"
            )
        if self.hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {self.hop_latency}")

    @classmethod
    def from_spec(cls, spec: str, hmc: Optional[HMCConfig] = None, **kw) -> "FabricConfig":
        name, cubes = parse_topology(spec)
        if hmc is None:
            hmc = HMCConfig()
        return cls(topology=name, cubes=cubes, hmc=hmc, **kw)

    @property
    def spec(self) -> str:
        return f"{self.topology}:{self.cubes}"

    def with_hmc(self, hmc: HMCConfig) -> "FabricConfig":
        return replace(self, hmc=hmc)


class Topology:
    """Static shortest-path routing over a :class:`FabricConfig`.

    Attributes
    ----------
    edges:
        Sorted ``(lo, hi)`` inter-cube edges (empty for ``star``).
    next_hop:
        ``next_hop[src][dst]`` is the neighbor cube a packet at ``src``
        must be forwarded to on its way to ``dst`` (``src`` itself when
        already home).
    entry_cube:
        The cube a host-issued packet enters the fabric at: the target
        itself under ``star`` fan-out, cube 0 for chain/ring.
    host_hops:
        Total link traversals (host link + inter-cube forwards) a request
        to each cube costs - the hop-count histogram's x axis.
    """

    def __init__(self, config: FabricConfig) -> None:
        self.config = config
        n = config.cubes
        self.cubes = n
        self.edges = self._build_edges(config.topology, n)
        adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
        for a, b in self.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        for nbrs in adjacency.values():
            nbrs.sort()
        self.adjacency = adjacency
        self.next_hop: List[List[int]] = [self._bfs(src, adjacency, n) for src in range(n)]
        self.host_hops: List[int] = [1 + self.path_length(self.entry_cube(c), c) for c in range(n)]

    @staticmethod
    def _build_edges(topology: str, n: int) -> List[Tuple[int, int]]:
        if n <= 1 or topology == "star":
            return []
        edges = [(i, i + 1) for i in range(n - 1)]
        if topology == "ring" and n > 2:
            edges.append((0, n - 1))
        return edges

    @staticmethod
    def _bfs(src: int, adjacency: Dict[int, List[int]], n: int) -> List[int]:
        # first_hop[dst] = neighbor of src on a shortest src->dst path;
        # sorted neighbor order makes tie-breaks deterministic.
        first_hop = [src] * n
        dist = [-1] * n
        dist[src] = 0
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    first_hop[v] = v if u == src else first_hop[u]
                    queue.append(v)
        return first_hop

    def entry_cube(self, target: int) -> int:
        """The cube a host packet for ``target`` enters the fabric at."""
        if self.config.topology == "star":
            return target
        return 0

    def path_length(self, src: int, dst: int) -> int:
        """Inter-cube hops between two cubes along the routed path."""
        hops = 0
        cur = src
        while cur != dst:
            cur = self.next_hop[cur][dst]
            hops += 1
            if hops > self.cubes:  # pragma: no cover - defensive
                raise RuntimeError(f"routing loop between cubes {src} and {dst}")
        return hops

    def describe(self) -> Dict[str, object]:
        return {
            "topology": self.config.topology,
            "cubes": self.cubes,
            "edges": [list(e) for e in self.edges],
            "host_hops": list(self.host_hops),
        }
