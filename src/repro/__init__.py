"""repro - reproduction of CAMPS (Rafique & Zhu, ICPP 2018).

CAMPS is a conflict-aware memory-side prefetching scheme for the Hybrid
Memory Cube: whole DRAM rows are prefetched over a vault's internal TSVs
into a small buffer in the vault controller, selected by row utilization
(RUT) and row-buffer conflict history (CT), and replaced by a combined
utilization+recency policy (CAMPS-MOD).

Quick start::

    from repro import run_system, mix

    traces = mix("HM1", refs_per_core=20_000, seed=1)
    base = run_system(traces, scheme="base", workload="HM1")
    camps = run_system(traces, scheme="camps-mod", workload="HM1")
    print(f"speedup: {camps.speedup_vs(base):.3f}x")

Package layout:

* :mod:`repro.core` - the prefetching schemes (the paper's contribution)
* :mod:`repro.dram`, :mod:`repro.vault`, :mod:`repro.interconnect`,
  :mod:`repro.hmc` - the Hybrid Memory Cube substrate
* :mod:`repro.cpu` - cache hierarchy and trace-driven cores
* :mod:`repro.workloads` - SPEC-like synthetic traces and Table II mixes
* :mod:`repro.experiments` - one runner per paper table/figure
"""

from repro.hmc.config import HMCConfig
from repro.obs import Tracer
from repro.system import (
    SimulationResult,
    System,
    SystemConfig,
    run_system,
)
from repro.workloads.mixes import mix, mix_names
from repro.workloads.synthetic import generate_trace
from repro.core.schemes import PAPER_SCHEMES, scheme_names

__version__ = "1.1.0"

__all__ = [
    "HMCConfig",
    "SimulationResult",
    "System",
    "SystemConfig",
    "Tracer",
    "run_system",
    "mix",
    "mix_names",
    "generate_trace",
    "PAPER_SCHEMES",
    "scheme_names",
    "__version__",
]
