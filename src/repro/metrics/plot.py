"""Terminal bar charts for figure data (no plotting library required).

The environment this reproduction targets is offline and matplotlib-free, so
the figure benches and CLI render grouped horizontal bar charts in plain
text.  Charts deliberately mirror the look of the paper's figures: one group
of bars per workload mix, one bar per scheme.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

#: Fill characters per scheme position, cycled - distinguishable in any font.
_FILLS = "#=+*o%@"


def bar_chart(
    per_workload: Dict[str, Dict[str, float]],
    schemes: Sequence[str],
    title: str,
    width: int = 48,
    value_format: str = "{:.3f}",
    baseline: Optional[float] = None,
) -> str:
    """Render grouped horizontal bars.

    ``baseline`` draws a reference column (e.g. 1.0 for normalized speedups)
    as a ``|`` marker inside each bar row.
    """
    values = [v for row in per_workload.values() for v in row.values()]
    if not values:
        raise ValueError("nothing to plot")
    vmax = max(values + ([baseline] if baseline is not None else []))
    if vmax <= 0:
        raise ValueError("bar charts need at least one positive value")
    scale = width / vmax
    name_w = max(len(s) for s in schemes) + 2

    lines = [title, "=" * len(title)]
    for workload, row in per_workload.items():
        lines.append(workload)
        for i, scheme in enumerate(schemes):
            v = row[scheme]
            n = max(0, int(round(v * scale)))
            bar = _FILLS[i % len(_FILLS)] * n
            if baseline is not None:
                pos = int(round(baseline * scale))
                if 0 <= pos <= width:
                    bar = (bar + " " * (width - len(bar)))[:width]
                    bar = bar[:pos] + "|" + bar[pos + 1 :]
            lines.append(
                f"  {scheme:<{name_w}}{bar.rstrip():<{width}} {value_format.format(v)}"
            )
        lines.append("")
    legend = "  ".join(
        f"{_FILLS[i % len(_FILLS)]} {s}" for i, s in enumerate(schemes)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def summary_bars(
    summary: Dict[str, Dict[str, float]],
    schemes: Sequence[str],
    title: str,
    width: int = 48,
    baseline: Optional[float] = None,
) -> str:
    """Bar chart of just the HM/LM/MX/AVG summary groups."""
    return bar_chart(summary, schemes, title, width=width, baseline=baseline)
