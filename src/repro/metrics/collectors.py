"""Metric collection over (workload x scheme) result matrices.

The evaluation section of the paper reports everything per workload mix with
HM / LM / MX group means and an overall average; :class:`ResultMatrix` is the
container the experiment runner fills and every figure function consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import geomean
from repro.system import SimulationResult


@dataclass
class ResultMatrix:
    """Results keyed by (workload, scheme)."""

    results: Dict[Tuple[str, str], SimulationResult] = field(default_factory=dict)

    def add(self, result: SimulationResult) -> None:
        self.results[(result.workload, result.scheme)] = result

    def get(self, workload: str, scheme: str) -> SimulationResult:
        try:
            return self.results[(workload, scheme)]
        except KeyError:
            raise KeyError(
                f"no result for workload={workload!r} scheme={scheme!r}"
            ) from None

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self.results

    def workloads(self) -> List[str]:
        seen: List[str] = []
        for w, _ in self.results:
            if w not in seen:
                seen.append(w)
        return seen

    def schemes(self) -> List[str]:
        seen: List[str] = []
        for _, s in self.results:
            if s not in seen:
                seen.append(s)
        return seen


def normalized_speedups(
    matrix: ResultMatrix,
    schemes: Iterable[str],
    baseline: str = "base",
    workloads: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 5's metric: per-workload geometric-mean per-core IPC speedup
    over the baseline scheme.  Returns ``{workload: {scheme: speedup}}``
    (the baseline itself is included at exactly 1.0)."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads if workloads is not None else matrix.workloads():
        base = matrix.get(w, baseline)
        out[w] = {s: matrix.get(w, s).speedup_vs(base) for s in schemes}
    return out


def conflict_rates(
    matrix: ResultMatrix,
    schemes: Iterable[str],
    workloads: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 6's metric: row-buffer conflicts per demand request."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads if workloads is not None else matrix.workloads():
        out[w] = {s: matrix.get(w, s).conflict_rate for s in schemes}
    return out


def accuracies(
    matrix: ResultMatrix,
    schemes: Iterable[str],
    workloads: Optional[Iterable[str]] = None,
    line_level: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Figure 7's metric: fraction of prefetched rows (or lines) that were
    referenced before leaving the buffer."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads if workloads is not None else matrix.workloads():
        out[w] = {
            s: (
                matrix.get(w, s).line_accuracy
                if line_level
                else matrix.get(w, s).row_accuracy
            )
            for s in schemes
        }
    return out


def amat_reduction(
    matrix: ResultMatrix,
    schemes: Iterable[str],
    baseline: str = "base",
    workloads: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 8's metric: relative reduction in mean memory (read) access
    latency versus the baseline; positive = faster than baseline."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads if workloads is not None else matrix.workloads():
        base = matrix.get(w, baseline).mean_read_latency
        out[w] = {
            s: (base - matrix.get(w, s).mean_read_latency) / base if base else 0.0
            for s in schemes
        }
    return out


def energy_normalized(
    matrix: ResultMatrix,
    schemes: Iterable[str],
    baseline: str = "base",
    workloads: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Figure 9's metric: total HMC energy normalized to the baseline."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads if workloads is not None else matrix.workloads():
        base = matrix.get(w, baseline).energy_pj
        out[w] = {
            s: matrix.get(w, s).energy_pj / base if base else 0.0 for s in schemes
        }
    return out


def group_geomean(
    per_workload: Dict[str, Dict[str, float]],
    schemes: Iterable[str],
    groups: Iterable[str] = ("HM", "LM", "MX"),
) -> Dict[str, Dict[str, float]]:
    """Fold per-workload values into HM / LM / MX geomeans plus "AVG".

    Uses geometric means for ratio-like metrics; since every figure in the
    paper normalizes against a baseline, geomean is the appropriate
    aggregate throughout.
    """
    out: Dict[str, Dict[str, float]] = {}
    workloads = list(per_workload.keys())
    for g in groups:
        members = [w for w in workloads if w.startswith(g)]
        if not members:
            continue
        out[g] = {
            s: geomean([per_workload[w][s] for w in members]) for s in schemes
        }
    out["AVG"] = {s: geomean([per_workload[w][s] for w in workloads]) for s in schemes}
    return out


def group_mean(
    per_workload: Dict[str, Dict[str, float]],
    schemes: Iterable[str],
    groups: Iterable[str] = ("HM", "LM", "MX"),
) -> Dict[str, Dict[str, float]]:
    """Arithmetic-mean grouping, for additive metrics (rates, reductions)."""
    out: Dict[str, Dict[str, float]] = {}
    workloads = list(per_workload.keys())
    for g in groups:
        members = [w for w in workloads if w.startswith(g)]
        if not members:
            continue
        out[g] = {
            s: sum(per_workload[w][s] for w in members) / len(members)
            for s in schemes
        }
    out["AVG"] = {
        s: sum(per_workload[w][s] for w in workloads) / len(workloads)
        for s in schemes
    }
    return out
