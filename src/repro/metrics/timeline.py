"""Time-series recording and terminal sparklines.

A :class:`Timeline` snapshots probe values on a fixed period (weak engine
events, like :class:`~repro.sim.sampler.Sampler`, but keeping the full
series rather than a histogram) and renders them as unicode sparklines -
the quickest way to see phase behaviour: queue-depth bursts when a core's
vault window lands on a hot vault, buffer occupancy ramping as CAMPS warms
up, outstanding-request plateaus when MLP saturates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.sim.engine import Engine

_SPARK = "▁▂▃▄▅▆▇█"  # 8 levels


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Render a series as a fixed-width unicode sparkline (mean-pooled)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        # mean-pool into `width` buckets
        pooled = []
        step = len(vals) / width
        for i in range(width):
            lo, hi = int(i * step), max(int(i * step) + 1, int((i + 1) * step))
            chunk = vals[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        vals = pooled
    vmin, vmax = min(vals), max(vals)
    span = vmax - vmin
    if span == 0:
        return _SPARK[0] * len(vals)
    return "".join(
        _SPARK[min(7, int((v - vmin) / span * 8))] for v in vals
    )


class Timeline:
    """Periodic full-series probe recording."""

    def __init__(self, engine: Engine, interval: int = 1000) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.engine = engine
        self.interval = interval
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        self.times: List[int] = []
        self.series: Dict[str, List[float]] = {}
        self._armed = False

    def probe(self, name: str, fn: Callable[[], float]) -> None:
        if name in self.series:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes.append((name, fn))
        self.series[name] = []

    def start(self) -> None:
        if not self._armed:
            self._armed = True
            self.engine.schedule(self.interval, self._tick, weak=True)

    def _tick(self) -> None:
        self.times.append(self.engine.now)
        for name, fn in self._probes:
            self.series[name].append(float(fn()))
        self.engine.schedule(self.interval, self._tick, weak=True)

    def text(self, width: int = 64) -> str:
        """All series as labelled sparklines with min/mean/max."""
        if not self.times:
            return "(no samples)"
        name_w = max(len(n) for n in self.series) + 2
        lines = [
            f"timeline: {len(self.times)} samples every {self.interval} cycles "
            f"({self.times[0]}..{self.times[-1]})"
        ]
        for name, vals in self.series.items():
            mean = sum(vals) / len(vals)
            lines.append(
                f"{name:<{name_w}}{sparkline(vals, width)}  "
                f"min={min(vals):.0f} mean={mean:.1f} max={max(vals):.0f}"
            )
        return "\n".join(lines)
