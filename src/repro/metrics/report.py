"""Plain-text and CSV rendering of figure data.

The benchmark harness prints each figure the way the paper's plots read: one
row per workload mix, one column per scheme, plus the HM / LM / MX / AVG
summary rows the paper quotes in the text.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union


def format_table(
    per_workload: Dict[str, Dict[str, float]],
    schemes: Sequence[str],
    title: str,
    value_format: str = "{:.3f}",
    summary: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Render ``{workload: {scheme: value}}`` as an aligned text table."""
    col_w = max(9, max((len(s) for s in schemes), default=9) + 1)
    name_w = max(8, max((len(w) for w in per_workload), default=8) + 1)
    lines: List[str] = [title, "=" * len(title)]
    header = "".join([f"{'workload':<{name_w}}"] + [f"{s:>{col_w}}" for s in schemes])
    lines.append(header)
    lines.append("-" * len(header))
    for w, row in per_workload.items():
        cells = "".join(f"{value_format.format(row[s]):>{col_w}}" for s in schemes)
        lines.append(f"{w:<{name_w}}{cells}")
    if summary:
        lines.append("-" * len(header))
        for g, row in summary.items():
            cells = "".join(f"{value_format.format(row[s]):>{col_w}}" for s in schemes)
            lines.append(f"{g:<{name_w}}{cells}")
    return "\n".join(lines)


def write_csv(
    per_workload: Dict[str, Dict[str, float]],
    schemes: Sequence[str],
    path: Union[str, Path],
    summary: Optional[Dict[str, Dict[str, float]]] = None,
) -> Path:
    """Dump the same data as CSV (one header row, one row per workload)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["workload"] + list(schemes))
        for w, row in per_workload.items():
            writer.writerow([w] + [row[s] for s in schemes])
        if summary:
            for g, row in summary.items():
                writer.writerow([g] + [row[s] for s in schemes])
    return path


def format_comparison(
    label: str,
    mine: float,
    paper: float,
    unit: str = "",
) -> str:
    """One line of measured-vs-paper comparison for EXPERIMENTS.md style
    reporting."""
    return f"{label:<40s} measured={mine:8.3f}{unit}  paper={paper:8.3f}{unit}"
