"""Post-run latency analysis over recorded requests.

With ``SystemConfig(record_requests=True)`` the host keeps every completed
:class:`~repro.request.MemoryRequest`; these helpers slice the population by
service source (bank / buffer / in-flight merge), read vs write, and
latency segment (queue+service inside the vault vs link/crossbar transport),
which is how "where did the cycles go" questions get answered - e.g. why a
scheme's buffer hits are fast but its bank path is congested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.request import MemoryRequest, ServiceSource


@dataclass(frozen=True)
class LatencySlice:
    """Summary statistics of one request sub-population."""

    n: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def of(cls, samples: List[int]) -> "LatencySlice":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        a = np.asarray(samples, dtype=np.float64)
        return cls(
            n=len(a),
            mean=float(a.mean()),
            p50=float(np.percentile(a, 50)),
            p90=float(np.percentile(a, 90)),
            p99=float(np.percentile(a, 99)),
            max=float(a.max()),
        )


def latency_by_source(
    requests: Iterable[MemoryRequest], reads_only: bool = True
) -> Dict[str, LatencySlice]:
    """End-to-end latency sliced by how each request was served."""
    buckets: Dict[str, List[int]] = {}
    for r in requests:
        if not r.is_complete or (reads_only and r.is_write):
            continue
        key = r.source.value if r.source is not None else "unknown"
        buckets.setdefault(key, []).append(r.latency)
    return {k: LatencySlice.of(v) for k, v in sorted(buckets.items())}


def latency_segments(requests: Iterable[MemoryRequest]) -> Dict[str, LatencySlice]:
    """Split each completed request's latency into transport (host <-> vault
    links + crossbar, both directions) and vault time (queueing + service)."""
    transport: List[int] = []
    vault_time: List[int] = []
    for r in requests:
        if not r.is_complete or r.vault_arrive_cycle < 0:
            continue
        inbound = r.vault_arrive_cycle - r.issue_cycle
        # outbound transport cannot be isolated without another stamp, so
        # vault time is measured to completion minus the inbound leg
        vault_time.append(r.complete_cycle - r.vault_arrive_cycle)
        transport.append(inbound)
    return {
        "transport_in": LatencySlice.of(transport),
        "vault_and_return": LatencySlice.of(vault_time),
    }


def format_latency_table(
    slices: Dict[str, LatencySlice], title: str = "latency by source"
) -> str:
    """Aligned text rendering of a slice dict."""
    lines = [title, "-" * len(title)]
    lines.append(
        f"{'population':<16}{'n':>8}{'mean':>9}{'p50':>8}{'p90':>8}{'p99':>9}{'max':>9}"
    )
    for name, s in slices.items():
        lines.append(
            f"{name:<16}{s.n:>8}{s.mean:>9.1f}{s.p50:>8.0f}{s.p90:>8.0f}"
            f"{s.p99:>9.0f}{s.max:>9.0f}"
        )
    return "\n".join(lines)
