"""Derived metrics and reporting helpers for the paper's figures.

:mod:`repro.metrics.collectors` turns sets of
:class:`~repro.system.SimulationResult` into the quantities each figure
plots (normalized speedups, conflict rates, accuracies, AMAT reductions,
normalized energy); :mod:`repro.metrics.report` renders them as aligned
ASCII tables and CSV for the benchmark harness.
"""

from repro.metrics.collectors import (
    ResultMatrix,
    amat_reduction,
    energy_normalized,
    group_geomean,
    normalized_speedups,
)
from repro.metrics.report import format_table, write_csv
from repro.metrics.plot import bar_chart, summary_bars
from repro.metrics.timeline import Timeline, sparkline
from repro.metrics.latency import (
    LatencySlice,
    format_latency_table,
    latency_by_source,
    latency_segments,
)

__all__ = [
    "ResultMatrix",
    "normalized_speedups",
    "amat_reduction",
    "energy_normalized",
    "group_geomean",
    "format_table",
    "write_csv",
    "bar_chart",
    "summary_bars",
    "Timeline",
    "sparkline",
    "LatencySlice",
    "format_latency_table",
    "latency_by_source",
    "latency_segments",
]
