"""Full-system assembly: cores + (optional) cache hierarchy + HMC.

:class:`System` wires one :class:`~repro.sim.engine.Engine` to eight
trace-driven cores, the host controller, and an :class:`~repro.hmc.device.
HMCDevice` running a chosen prefetching scheme, runs the simulation to
completion, and returns a :class:`SimulationResult` with everything the
paper's figures need (per-core IPC, conflict rate, prefetch accuracy, AMAT,
energy).

Two memory front-ends are available:

* ``use_caches=False`` (default for experiments) - traces are *post-LLC*
  reference streams (the generators are calibrated at that level); cores
  talk straight to the HMC host controller.  This matches how the paper's
  numbers are produced: every evaluated statistic lives below the LLC.
* ``use_caches=True`` - traces are raw reference streams filtered through
  the full L1/L2/L3 hierarchy of Table I (used by integration tests and the
  cache-mode example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cpu.core import Core, CoreParams, MemoryPort
from repro.cpu.hierarchy import CacheHierarchy, HierarchyParams
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.hmc.host import HostController
from repro.request import MemoryRequest
from repro.sim.backend import engine_class as backend_engine_class
from repro.sim.engine import Engine
from repro.sim.sampler import Sampler
from repro.sim.stats import geomean
from repro.workloads.trace import Trace


class DirectPort(MemoryPort):
    """Post-LLC front-end: every trace record is one HMC transaction."""

    #: The host delivers the same request object to ``on_fill`` that this
    #: port created, so per-load context can ride on ``req.meta`` and the
    #: core can reuse one bound fill method instead of a closure per load.
    fill_via_meta = True

    def __init__(self, host: HostController, engine: Engine) -> None:
        self.host = host
        self.engine = engine

    def load(
        self,
        core_id: int,
        addr: int,
        on_fill: Callable[[MemoryRequest], None],
        meta: Optional[Any] = None,
    ) -> Optional[int]:
        # MemoryRequest.acquire inlined: this runs once per traced load and
        # the classmethod frame was visible in the hot-loop profile.
        pool = MemoryRequest._pool
        if pool:
            req = pool.pop()
            MemoryRequest._next_id = rid = MemoryRequest._next_id + 1
            req.req_id = rid
            req.addr = addr
            req.is_write = False
            req.core_id = core_id
            req.issue_cycle = self.engine.now
            req.callback = on_fill
        else:
            req = MemoryRequest(addr, False, core_id, self.engine.now, on_fill)
        req.meta = meta
        self.host.send(req)
        return None

    def store(self, core_id: int, addr: int) -> None:
        pool = MemoryRequest._pool
        if pool:
            req = pool.pop()
            MemoryRequest._next_id = rid = MemoryRequest._next_id + 1
            req.req_id = rid
            req.addr = addr
            req.is_write = True
            req.core_id = core_id
            req.issue_cycle = self.engine.now
            req.callback = None
        else:
            req = MemoryRequest(addr, True, core_id, self.engine.now)
        self.host.send(req)


class HierarchyPort(MemoryPort):
    """Full-hierarchy front-end: records filter through L1/L2/L3 first."""

    def __init__(self, hierarchy: CacheHierarchy, engine: Engine) -> None:
        self.hierarchy = hierarchy
        self.engine = engine

    def load(
        self,
        core_id: int,
        addr: int,
        on_fill: Callable[[MemoryRequest], None],
        meta: Optional[Any] = None,
    ) -> Optional[int]:
        # meta is unused: MSHR merging means the request delivered to
        # on_fill may not be the one this load created, so context cannot
        # ride on it (fill_via_meta stays False).
        res = self.hierarchy.access(core_id, addr, is_write=False, on_fill=on_fill)
        if res.level == "MEM":
            return None
        return self.engine.now + res.latency

    def store(self, core_id: int, addr: int) -> None:
        self.hierarchy.access(core_id, addr, is_write=True, on_fill=None)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated system."""

    hmc: HMCConfig = field(default_factory=HMCConfig)
    core_params: CoreParams = field(default_factory=CoreParams)
    hierarchy_params: HierarchyParams = field(default_factory=HierarchyParams)
    scheme: str = "camps-mod"
    use_caches: bool = False
    record_commands: bool = False
    #: zero all measurement counters at this cycle (warmup boundary); the
    #: paper warms its caches before detailed simulation - this is the
    #: equivalent knob for the memory-side statistics.  Core IPC is always
    #: whole-run.
    stats_warmup_cycles: Optional[int] = None
    #: sample queue depth / buffer occupancy every N cycles (None = off);
    #: results appear in SimulationResult.extra["samples"]
    sample_interval: Optional[int] = None
    #: epoch-windowed time series (repro.obs.timeseries): snapshot the
    #: standard derived gauges every N cycles into ring-buffered series
    #: (None = off).  The payload appears in
    #: SimulationResult.extra["timeseries"] and in RunReport artifacts;
    #: sampling never perturbs simulation order or result digests.
    timeseries_epoch: Optional[int] = None
    #: keep every completed MemoryRequest on the host for post-run latency
    #: analysis (repro.metrics.latency); costs memory proportional to trace
    record_requests: bool = False
    #: enable the simulation integrity layer (repro.sim.integrity): a
    #: forward-progress watchdog, structural invariant checks, and a crash
    #: dump + IntegrityError on any violation or engine exception
    integrity: bool = False
    #: where crash dumps land (None = $REPRO_CRASH_DIR or ./crash_dumps)
    crash_dump_dir: Optional[str] = None


@dataclass
class SimulationResult:
    """Outcome of one System.run()."""

    scheme: str
    workload: str
    cycles: int
    core_ipc: List[float]
    core_instructions: List[int]
    conflict_rate: float
    row_conflicts: int
    demand_accesses: int
    buffer_hits: int
    prefetches_issued: int
    row_accuracy: float
    line_accuracy: float
    mean_memory_latency: float
    mean_read_latency: float
    energy_pj: float
    energy_breakdown: Dict[str, float]
    link_utilization: float
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def geomean_ipc(self) -> float:
        return geomean(self.core_ipc)

    def speedup_vs(self, baseline: "SimulationResult") -> float:
        """Geometric-mean per-core IPC ratio against a baseline run (the
        paper's Figure 5 metric, normalized per workload)."""
        if len(self.core_ipc) != len(baseline.core_ipc):
            raise ValueError("core counts differ")
        return geomean(
            [a / b for a, b in zip(self.core_ipc, baseline.core_ipc)]
        )

    def summary(self) -> Dict[str, float]:
        return {
            "geomean_ipc": self.geomean_ipc,
            "conflict_rate": self.conflict_rate,
            "row_accuracy": self.row_accuracy,
            "mean_read_latency": self.mean_read_latency,
            "energy_pj": self.energy_pj,
        }


class System:
    """One simulated machine: build, run once, read the result."""

    def __init__(
        self,
        traces: List[Trace],
        config: Optional[SystemConfig] = None,
        workload: str = "custom",
        scheme_kwargs: Optional[Dict[str, Any]] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        if not traces:
            raise ValueError("need at least one core trace")
        self.config = config or SystemConfig()
        self.workload = workload
        # Backend seam: REPRO_BACKEND picks the kernel incarnation (pure
        # Python, or the mypyc-compiled artifact when built); see
        # repro.sim.backend for the fallback contract.
        self.engine = backend_engine_class()()
        self.device = HMCDevice(
            self.config.hmc,
            self.engine,
            scheme=self.config.scheme,
            scheme_kwargs=scheme_kwargs,
            record_commands=self.config.record_commands,
        )
        self.host = HostController(
            self.config.hmc,
            self.engine,
            self.device,
            record_requests=self.config.record_requests,
        )
        self.hierarchy: Optional[CacheHierarchy] = None
        port: MemoryPort
        if self.config.use_caches:
            self.hierarchy = CacheHierarchy(
                self.config.hierarchy_params,
                num_cores=len(traces),
                engine=self.engine,
                send_fn=self.host.send,
            )
            port = HierarchyPort(self.hierarchy, self.engine)
        else:
            port = DirectPort(self.host, self.engine)
            # Post-LLC front-end with no request recording: the host is the
            # last holder of a delivered request (core fills ignore the
            # object), so completed requests recycle through the pool.
            if not self.config.record_requests:
                self.host.recycle_requests = True
        self.cores: List[Core] = [
            Core(
                core_id=i,
                engine=self.engine,
                mem=port,
                gaps=t.gaps,
                addrs=t.addrs,
                writes=t.writes,
                params=self.config.core_params,
            )
            for i, t in enumerate(traces)
        ]
        self.sampler: Optional[Sampler] = None
        if self.config.sample_interval is not None:
            self.sampler = Sampler(self.engine, self.config.sample_interval)
            self.sampler.probe(
                "queue_depth",
                lambda: sum(len(vc.queues) for vc in self.device.vaults),
            )
            self.sampler.probe(
                "buffer_occupancy",
                lambda: sum(
                    len(vc.buffer) for vc in self.device.vaults if vc.buffer
                ),
            )
            self.sampler.probe("host_outstanding", lambda: self.host.outstanding)
        #: observability tracer (repro.obs.Tracer); wiring installs it on the
        #: engine, host, vaults, schedulers, prefetchers and banks, and
        #: registers the component counters into its device→vault→bank tree
        self.tracer = tracer
        if tracer is not None:
            tracer.wire_system(self)
        #: epoch-windowed time series (repro.obs.timeseries.TimeseriesSampler)
        self.timeseries = None
        if self.config.timeseries_epoch is not None:
            from repro.obs.timeseries import TimeseriesSampler  # local: keep
            # the unsampled build path free of the obs timeseries import

            self.timeseries = TimeseriesSampler(
                self.engine, epoch=self.config.timeseries_epoch
            )
            self.timeseries.attach(self)
        self.monitor = None
        if self.config.integrity:
            from repro.sim.integrity import IntegrityMonitor  # local: keep the
            # default build path free of the integrity import

            self.monitor = IntegrityMonitor(
                self, crash_dump_dir=self.config.crash_dump_dir
            )
        self._ran = False

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Run to completion (all cores retire all trace records).

        With ``integrity`` enabled, any wedge, invariant violation or
        engine exception writes a crash dump and raises
        :class:`~repro.sim.integrity.IntegrityError` with the diagnosis
        attached (the campaign layer records it in the manifest).
        """
        if self._ran:
            raise RuntimeError("System.run() may only be called once")
        self._ran = True
        if self.monitor is None:
            return self._run_inner(max_events)
        from repro.sim.integrity import IntegrityError

        try:
            result = self._run_inner(max_events)
            self.monitor.check_final()
            return result
        except IntegrityError as exc:
            # Watchdog/invariant raises arrive undressed (no dump yet);
            # check_final raises fully dressed (dump_path set).
            if exc.dump_path is None:
                raise self.monitor.failed(exc) from None
            raise
        except Exception as exc:
            raise self.monitor.failed(exc) from exc

    def _run_inner(self, max_events: Optional[int] = None) -> SimulationResult:
        if self.config.stats_warmup_cycles is not None:
            self.engine.schedule(
                self.config.stats_warmup_cycles,
                self._warmup_boundary,
                priority=-10,
                weak=True,
            )
        if self.sampler is not None:
            self.sampler.start()
        if self.timeseries is not None:
            self.timeseries.start()
        for core in self.cores:
            core.start()
        self.engine.run(max_events=max_events)
        stuck = [c.core_id for c in self.cores if not c.done]
        if stuck:
            raise RuntimeError(
                f"simulation drained with unfinished cores {stuck}; "
                f"events={self.engine.events_fired}"
            )
        self.device.finalize()
        return self._collect()

    def _warmup_boundary(self) -> None:
        self.device.reset_statistics()
        self.host.reset_statistics()

    def _collect(self) -> SimulationResult:
        dev = self.device
        extra: Dict[str, Any] = {
            "events_fired": self.engine.events_fired,
            "core_stall_cycles": [c.stall_cycles for c in self.cores],
            "core_rob_stalls": [c.rob_stalls for c in self.cores],
            "core_mlp_stalls": [c.mlp_stalls for c in self.cores],
        }
        if self.hierarchy is not None:
            extra["llc_misses"] = self.hierarchy.llc_misses()
            extra["llc_hit_rate"] = self.hierarchy.l3.hit_rate()
        if self.sampler is not None:
            extra["samples"] = {
                name: {"mean": h.mean, "max": h.max, "n": h.n}
                for name, h in self.sampler.histograms().items()
            }
        # bank row-buffer outcome distribution (hit / empty / conflict)
        hits = empties = conflicts = 0
        for vc in self.device.vaults:
            for b in vc.banks:
                hits += b.hits
                empties += b.empties
                conflicts += b.conflicts
        extra["bank_outcomes"] = {
            "hits": hits,
            "empties": empties,
            "conflicts": conflicts,
        }
        extra["tsv_bus_utilization"] = (
            sum(vc.tsv_bus.utilization(self.engine.now) for vc in self.device.vaults)
            / len(self.device.vaults)
            if self.engine.now
            else 0.0
        )
        # scheme-specific decision breakdown (CAMPS's two trigger paths)
        pf0 = self.device.vaults[0].prefetcher
        if hasattr(pf0, "utilization_prefetches"):
            extra["utilization_prefetches"] = sum(
                vc.prefetcher.utilization_prefetches for vc in self.device.vaults
            )
            extra["conflict_prefetches"] = sum(
                vc.prefetcher.conflict_prefetches for vc in self.device.vaults
            )
        if hasattr(pf0, "degree"):
            extra["mmd_final_degrees"] = [
                vc.prefetcher.degree for vc in self.device.vaults
            ]
        if self.host.faults_enabled:
            extra["link_faults"] = self.host.link_fault_summary()
        if self.tracer is not None:
            extra["trace_summary"] = self.tracer.summary()
        if self.timeseries is not None:
            extra["timeseries"] = self.timeseries.to_payload()
        return SimulationResult(
            scheme=self.config.scheme,
            workload=self.workload,
            cycles=self.engine.now,
            core_ipc=[c.ipc for c in self.cores],
            core_instructions=[c.instr for c in self.cores],
            conflict_rate=dev.conflict_rate(),
            row_conflicts=dev.row_conflicts,
            demand_accesses=dev.demand_accesses,
            buffer_hits=dev.buffer_hits,
            prefetches_issued=dev.prefetches_issued(),
            row_accuracy=dev.prefetch_row_accuracy(),
            line_accuracy=dev.prefetch_line_accuracy(),
            mean_memory_latency=self.host.mean_memory_latency(),
            mean_read_latency=self.host.mean_read_latency(),
            energy_pj=dev.energy.total_pj(),
            energy_breakdown=dev.energy.breakdown_pj(),
            link_utilization=self.host.link_utilization(),
            extra=extra,
        )


def run_system(
    traces: List[Trace],
    scheme: str,
    workload: str = "custom",
    hmc: Optional[HMCConfig] = None,
    use_caches: bool = False,
    core_params: Optional[CoreParams] = None,
    scheme_kwargs: Optional[Dict[str, Any]] = None,
    tracer: Optional[Any] = None,
    integrity: bool = False,
    crash_dump_dir: Optional[str] = None,
) -> SimulationResult:
    """Build-and-run convenience wrapper (the main public entry point)."""
    cfg = SystemConfig(
        hmc=hmc or HMCConfig(),
        core_params=core_params or CoreParams(),
        scheme=scheme,
        use_caches=use_caches,
        integrity=integrity,
        crash_dump_dir=crash_dump_dir,
    )
    return System(
        traces, cfg, workload=workload, scheme_kwargs=scheme_kwargs, tracer=tracer
    ).run()
