"""Trace-driven core with a reorder-buffer/MLP timing model.

The paper simulates 8 out-of-order x86 cores (4-wide, Table I) in gem5.  For
a memory-system study the core's job is to translate memory latency into
lost cycles faithfully; microarchitectural detail beyond that is noise.  The
model here is the standard trace-driven interval approximation:

* Non-memory instructions retire at ``issue_width`` per cycle.
* A load enters a reorder buffer of ``rob_size`` instructions.  The core can
  run ahead of an outstanding load by at most ``rob_size`` instructions
  before it must stall for the load's completion - this is what makes
  memory latency visible to IPC even at low miss rates (the paper's LM
  workloads) while still overlapping nearby misses (memory-level parallelism
  for the HM workloads).
* At most ``mlp`` memory misses may be outstanding (per-core MSHR limit).
* Stores are posted (write-buffered) and never stall the core.

A core interacts with memory through a tiny adapter interface
(:class:`MemoryPort`), so the same core drives either the full cache
hierarchy or a post-LLC miss trace directly into the HMC.
"""

from __future__ import annotations

import abc
from collections import deque
from heapq import heappush
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional

import numpy as np

from repro.request import MemoryRequest
from repro.sim.arrays import replay_tables
from repro.sim.engine import Engine


@dataclass(frozen=True)
class CoreParams:
    """Core timing parameters (defaults per Table I plus standard OoO sizes)."""

    issue_width: int = 4
    rob_size: int = 192
    mlp: int = 8  # max outstanding memory misses per core

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.rob_size < 1:
            raise ValueError("rob_size must be >= 1")
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")


class MemoryPort(abc.ABC):
    """What a core needs from the memory system."""

    #: True when the port threads ``meta`` through to the fill callback via
    #: ``MemoryRequest.meta``.  Ports that guarantee it let the core pass one
    #: shared bound method as ``on_fill`` (with per-load context in ``meta``)
    #: instead of allocating a fresh closure per load.
    fill_via_meta: bool = False

    @abc.abstractmethod
    def load(
        self,
        core_id: int,
        addr: int,
        on_fill: Callable[[MemoryRequest], None],
        meta: Optional[Any] = None,
    ) -> Optional[int]:
        """Issue a load at the current engine cycle.

        Returns a known completion *cycle* for accesses whose latency is
        deterministic (cache hits), or None when the data will arrive via
        ``on_fill`` (a memory miss).  Ports with ``fill_via_meta`` stash
        ``meta`` on the request so ``on_fill`` can recover its context.
        """

    @abc.abstractmethod
    def store(self, core_id: int, addr: int) -> None:
        """Issue a posted store at the current engine cycle."""


class Core:
    """One trace-driven core."""

    def __init__(
        self,
        core_id: int,
        engine: Engine,
        mem: MemoryPort,
        gaps: np.ndarray,
        addrs: np.ndarray,
        writes: np.ndarray,
        params: Optional[CoreParams] = None,
        on_done: Optional[Callable[["Core"], None]] = None,
    ) -> None:
        if not (len(gaps) == len(addrs) == len(writes)):
            raise ValueError("trace arrays must have equal length")
        self.core_id = core_id
        self.engine = engine
        self.mem = mem
        self.gaps = np.asarray(gaps, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=bool)
        self.params = params or CoreParams()
        # replay-loop mirrors: the frozen-dataclass attribute chain is paid
        # once here instead of per _run() invocation
        self._issue_width = self.params.issue_width
        self._rob_size = self.params.rob_size
        self._mlp = self.params.mlp
        # Plain-list mirrors for the replay loop: scalar indexing into a
        # NumPy array boxes a fresh numpy scalar per record, which showed
        # up in profiles at one gap+addr+write triple per trace record.
        # The per-record arithmetic (front-end cycle bump, retire count) is
        # a pure function of the trace, so it is precomputed vectorized
        # instead of re-derived record by record in the loop.
        self._bumps, self._retire = replay_tables(self.gaps, self._issue_width)
        self._addrs = self.addrs.tolist()
        self._writes = self.writes.tolist()
        self.on_done = on_done
        # One shared fill callback (context rides on MemoryRequest.meta) when
        # the port supports it; otherwise fall back to per-load closures.
        self._fill_via_meta = getattr(mem, "fill_via_meta", False)
        # Read-only replay context pack: one attribute read + C-level unpack
        # in _run's prologue instead of a dozen attribute chains per call.
        self._run_ctx = (
            self._rob_size,
            self._mlp,
            self._bumps,
            self._retire,
            self._addrs,
            self._writes,
            mem,
            core_id,
            len(self.gaps),
            self._fill if self._fill_via_meta else None,
        )

        self.n = len(self.gaps)
        self.idx = 0
        self.cycle = 0  # core-local time; never behind engine.now when running
        self.instr = 0  # retired instructions
        # outstanding loads in ROB order: [instr_no, completion_cycle | None]
        self.outstanding: Deque[List[Optional[int]]] = deque()
        self.pending_misses = 0
        self._advanced = False
        self._pending_instr = 0
        self._waiting = False
        self.done = False
        self.finish_cycle: Optional[int] = None
        # stall statistics
        self.rob_stalls = 0
        self.mlp_stalls = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, delay: int = 0) -> None:
        """Begin replaying the trace ``delay`` cycles from now."""
        self.engine.schedule(delay, self._run)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (valid once done)."""
        if self.finish_cycle is None or self.finish_cycle == 0:
            return 0.0
        return self.instr / self.finish_cycle

    # ------------------------------------------------------------------
    # Main replay loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self.done or self._waiting:
            return
        # The replay loop mirrors its per-record state into locals and writes
        # it back at every exit.  This is safe because nothing fires between
        # records: mem.load/store only schedule events, and the fill callback
        # (the one other writer of pending_misses / _waiting) runs from a
        # future engine event, never synchronously inside this call.
        engine = self.engine
        now = engine.now
        cycle = self.cycle
        if now > cycle:
            cycle = now
        (
            rob_size,
            mlp,
            bumps,
            retire,
            addrs,
            writes,
            mem,
            core_id,
            n,
            fill,
        ) = self._run_ctx
        outstanding = self.outstanding
        idx = self.idx
        instr = self.instr
        advanced = self._advanced
        pending_instr = self._pending_instr
        pending_misses = self.pending_misses
        stalled = False
        while idx < n:
            if not advanced:
                cycle += bumps[idx]
                pending_instr = retire[idx]
                advanced = True

            # ROB constraint: cannot run further than rob_size instructions
            # past an incomplete load.
            rob_limit = pending_instr - rob_size
            while outstanding and outstanding[0][0] <= rob_limit:
                head = outstanding[0]
                done_at = head[1]
                if done_at is None:
                    self.rob_stalls += 1
                    stalled = True
                    break
                if done_at > cycle:
                    cycle = done_at
                outstanding.popleft()
            if stalled:
                break

            # MLP constraint: bounded outstanding misses.
            if pending_misses >= mlp:
                self.mlp_stalls += 1
                stalled = True
                break

            # Synchronize engine time with core time before touching memory.
            if cycle > now:
                self.cycle = cycle
                self.idx = idx
                self.instr = instr
                self._advanced = advanced
                self._pending_instr = pending_instr
                self.pending_misses = pending_misses
                # Engine.call_at inlined (cycle > now by the branch guard).
                engine._seq = seq = engine._seq + 1
                heappush(engine._heap, (cycle, 0, seq, self._run, ()))
                engine._strong += 1
                return

            # Commit the record and issue its memory operation.
            addr = addrs[idx]
            is_write = writes[idx]
            instr = pending_instr
            idx += 1
            advanced = False
            if is_write:
                mem.store(core_id, addr)
            else:
                entry: List[Optional[int]] = [instr, None]
                outstanding.append(entry)
                if fill is not None:
                    known = mem.load(core_id, addr, fill, entry)
                else:
                    known = mem.load(core_id, addr, self._make_fill(entry))
                if known is not None:
                    entry[1] = known
                else:
                    pending_misses += 1
        self.cycle = cycle
        self.idx = idx
        self.instr = instr
        self._advanced = advanced
        self._pending_instr = pending_instr
        self.pending_misses = pending_misses
        if stalled:
            self._waiting = True
            return
        self._try_finish()

    def _fill(self, req: MemoryRequest) -> None:
        """Shared fill callback for ``fill_via_meta`` ports: the ROB entry
        rides on ``req.meta`` instead of in a per-load closure cell."""
        entry = req.meta
        engine = self.engine
        now = engine.now
        entry[1] = now
        self.pending_misses -= 1
        if self._waiting:
            self._waiting = False
            if now > self.cycle:
                self.stall_cycles += now - self.cycle
            # Engine.call_at inlined (time is now; never past).
            engine._seq = seq = engine._seq + 1
            heappush(engine._heap, (now, 0, seq, self._run, ()))
            engine._strong += 1
        elif self.done is False and self.idx >= self.n:
            self._try_finish()

    def _make_fill(self, entry: List[Optional[int]]) -> Callable[[MemoryRequest], None]:
        def fill(_req: MemoryRequest) -> None:
            engine = self.engine
            now = engine.now
            entry[1] = now
            self.pending_misses -= 1
            if self._waiting:
                self._waiting = False
                if now > self.cycle:
                    self.stall_cycles += now - self.cycle
                engine.call_at(now, self._run)
            elif self.done is False and self.idx >= self.n:
                self._try_finish()

        return fill

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _try_finish(self) -> None:
        if self.done or self.idx < self.n:
            return
        if any(e[1] is None for e in self.outstanding):
            return  # a miss callback will retry
        last = self.cycle
        for e in self.outstanding:
            c = e[1]
            assert c is not None
            if c > last:
                last = c
        self.outstanding.clear()
        self.cycle = last
        self.finish_cycle = last
        self.done = True
        if self.on_done is not None:
            self.on_done(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Core {self.core_id} {self.idx}/{self.n} instr={self.instr} "
            f"cycle={self.cycle} done={self.done}>"
        )
