"""Trace-driven core with a reorder-buffer/MLP timing model.

The paper simulates 8 out-of-order x86 cores (4-wide, Table I) in gem5.  For
a memory-system study the core's job is to translate memory latency into
lost cycles faithfully; microarchitectural detail beyond that is noise.  The
model here is the standard trace-driven interval approximation:

* Non-memory instructions retire at ``issue_width`` per cycle.
* A load enters a reorder buffer of ``rob_size`` instructions.  The core can
  run ahead of an outstanding load by at most ``rob_size`` instructions
  before it must stall for the load's completion - this is what makes
  memory latency visible to IPC even at low miss rates (the paper's LM
  workloads) while still overlapping nearby misses (memory-level parallelism
  for the HM workloads).
* At most ``mlp`` memory misses may be outstanding (per-core MSHR limit).
* Stores are posted (write-buffered) and never stall the core.

A core interacts with memory through a tiny adapter interface
(:class:`MemoryPort`), so the same core drives either the full cache
hierarchy or a post-LLC miss trace directly into the HMC.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

import numpy as np

from repro.request import MemoryRequest
from repro.sim.engine import Engine


@dataclass(frozen=True)
class CoreParams:
    """Core timing parameters (defaults per Table I plus standard OoO sizes)."""

    issue_width: int = 4
    rob_size: int = 192
    mlp: int = 8  # max outstanding memory misses per core

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.rob_size < 1:
            raise ValueError("rob_size must be >= 1")
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")


class MemoryPort(abc.ABC):
    """What a core needs from the memory system."""

    @abc.abstractmethod
    def load(
        self,
        core_id: int,
        addr: int,
        on_fill: Callable[[MemoryRequest], None],
    ) -> Optional[int]:
        """Issue a load at the current engine cycle.

        Returns a known completion *cycle* for accesses whose latency is
        deterministic (cache hits), or None when the data will arrive via
        ``on_fill`` (a memory miss).
        """

    @abc.abstractmethod
    def store(self, core_id: int, addr: int) -> None:
        """Issue a posted store at the current engine cycle."""


class Core:
    """One trace-driven core."""

    def __init__(
        self,
        core_id: int,
        engine: Engine,
        mem: MemoryPort,
        gaps: np.ndarray,
        addrs: np.ndarray,
        writes: np.ndarray,
        params: Optional[CoreParams] = None,
        on_done: Optional[Callable[["Core"], None]] = None,
    ) -> None:
        if not (len(gaps) == len(addrs) == len(writes)):
            raise ValueError("trace arrays must have equal length")
        self.core_id = core_id
        self.engine = engine
        self.mem = mem
        self.gaps = np.asarray(gaps, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=bool)
        self.params = params or CoreParams()
        self.on_done = on_done

        self.n = len(self.gaps)
        self.idx = 0
        self.cycle = 0  # core-local time; never behind engine.now when running
        self.instr = 0  # retired instructions
        # outstanding loads in ROB order: [instr_no, completion_cycle | None]
        self.outstanding: Deque[List[Optional[int]]] = deque()
        self.pending_misses = 0
        self._advanced = False
        self._pending_instr = 0
        self._waiting = False
        self.done = False
        self.finish_cycle: Optional[int] = None
        # stall statistics
        self.rob_stalls = 0
        self.mlp_stalls = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, delay: int = 0) -> None:
        """Begin replaying the trace ``delay`` cycles from now."""
        self.engine.schedule(delay, self._run)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (valid once done)."""
        if self.finish_cycle is None or self.finish_cycle == 0:
            return 0.0
        return self.instr / self.finish_cycle

    # ------------------------------------------------------------------
    # Main replay loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self.done or self._waiting:
            return
        if self.engine.now > self.cycle:
            self.cycle = self.engine.now
        p = self.params
        while self.idx < self.n:
            if not self._advanced:
                gap = int(self.gaps[self.idx])
                self.cycle += -(-gap // p.issue_width)  # ceil division
                self._pending_instr = self.instr + gap + 1
                self._advanced = True

            # ROB constraint: cannot run further than rob_size instructions
            # past an incomplete load.
            rob_limit = self._pending_instr - p.rob_size
            blocked = False
            while self.outstanding and self.outstanding[0][0] <= rob_limit:
                head = self.outstanding[0]
                if head[1] is None:
                    self.rob_stalls += 1
                    self._waiting = True
                    blocked = True
                    break
                if head[1] > self.cycle:
                    self.cycle = head[1]
                self.outstanding.popleft()
            if blocked:
                return

            # MLP constraint: bounded outstanding misses.
            if self.pending_misses >= p.mlp:
                self.mlp_stalls += 1
                self._waiting = True
                return

            # Synchronize engine time with core time before touching memory.
            if self.cycle > self.engine.now:
                self.engine.schedule_at(self.cycle, self._run)
                return

            # Commit the record and issue its memory operation.
            addr = int(self.addrs[self.idx])
            is_write = bool(self.writes[self.idx])
            self.instr = self._pending_instr
            self.idx += 1
            self._advanced = False
            if is_write:
                self.mem.store(self.core_id, addr)
            else:
                entry: List[Optional[int]] = [self.instr, None]
                self.outstanding.append(entry)
                known = self.mem.load(self.core_id, addr, self._make_fill(entry))
                if known is not None:
                    entry[1] = known
                else:
                    self.pending_misses += 1
        self._try_finish()

    def _make_fill(self, entry: List[Optional[int]]) -> Callable[[MemoryRequest], None]:
        def fill(_req: MemoryRequest) -> None:
            entry[1] = self.engine.now
            self.pending_misses -= 1
            if self._waiting:
                self._waiting = False
                self.stall_cycles += max(0, self.engine.now - self.cycle)
                self.engine.schedule(0, self._run)
            elif self.done is False and self.idx >= self.n:
                self._try_finish()

        return fill

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _try_finish(self) -> None:
        if self.done or self.idx < self.n:
            return
        if any(e[1] is None for e in self.outstanding):
            return  # a miss callback will retry
        last = self.cycle
        for e in self.outstanding:
            c = e[1]
            assert c is not None
            if c > last:
                last = c
        self.outstanding.clear()
        self.cycle = last
        self.finish_cycle = last
        self.done = True
        if self.on_done is not None:
            self.on_done(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Core {self.core_id} {self.idx}/{self.n} instr={self.instr} "
            f"cycle={self.cycle} done={self.done}>"
        )
