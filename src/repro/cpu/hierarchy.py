"""Three-level cache hierarchy (Table I) in front of the HMC.

Private L1 (32 KB, 2-way, 2-cycle) and L2 (256 KB, 4-way, 6-cycle) per core,
shared L3 (16 MB, 16-way, 20-cycle), 64 B lines everywhere.  Lookups are
functional and sequential: an L3 hit costs 2+6+20 cycles of latency; an L3
miss additionally traverses the MSHR file and becomes a memory request.

Fill policy installs the line at every level (mostly-inclusive, like gem5's
classic caches); dirty victims cascade downward and dirty L3 victims become
posted memory writes.  Secondary misses merge in the MSHRs, and when the
MSHR file is full the request parks in an issue queue - callers never see a
rejection, only latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.cpu.cache import Cache, CacheParams
from repro.cpu.mshr import MSHRFile
from repro.request import MemoryRequest
from repro.sim.engine import Engine

SendFn = Callable[[MemoryRequest], None]
FillFn = Callable[[MemoryRequest], None]


@dataclass(frozen=True)
class HierarchyParams:
    """Cache geometry; defaults are the paper's Table I."""

    l1: CacheParams = field(
        default_factory=lambda: CacheParams("L1", 32 * 1024, 2, 64, 2)
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams("L2", 256 * 1024, 4, 64, 6)
    )
    l3: CacheParams = field(
        default_factory=lambda: CacheParams("L3", 16 * 1024 * 1024, 16, 64, 20)
    )
    mshr_capacity: int = 64

    @property
    def l1_latency(self) -> int:
        return self.l1.hit_latency

    @property
    def l2_latency(self) -> int:
        return self.l1.hit_latency + self.l2.hit_latency

    @property
    def l3_latency(self) -> int:
        return self.l1.hit_latency + self.l2.hit_latency + self.l3.hit_latency


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of one hierarchy access.

    ``level`` is one of ``"L1" | "L2" | "L3" | "MEM"``.  For cache hits,
    ``latency`` is the full lookup latency and no callback will fire.  For
    ``MEM`` the data arrives via the ``on_fill`` callback passed to
    :meth:`CacheHierarchy.access`; ``latency`` is only the lookup time spent
    before the request left for memory.
    """

    level: str
    latency: int


class CacheHierarchy:
    """Private L1/L2 per core, shared L3, MSHR-merged memory interface."""

    def __init__(
        self,
        params: HierarchyParams,
        num_cores: int,
        engine: Engine,
        send_fn: SendFn,
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.params = params
        self.engine = engine
        self.send_fn = send_fn
        self.l1: List[Cache] = [Cache(params.l1) for _ in range(num_cores)]
        self.l2: List[Cache] = [Cache(params.l2) for _ in range(num_cores)]
        self.l3 = Cache(params.l3)
        self.mshrs = MSHRFile(params.mshr_capacity)
        self._issue_queue: Deque[Tuple[int, MemoryRequest, Optional[FillFn]]] = deque()
        # line -> (core_id, dirty) fills pending install metadata
        self._fill_meta: Dict[int, Tuple[int, bool]] = {}
        self.memory_reads = 0
        self.memory_writes = 0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def access(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        on_fill: Optional[FillFn] = None,
    ) -> HierarchyResult:
        """One load/store from ``core_id`` at the current engine cycle."""
        p = self.params
        if self.l1[core_id].lookup(addr, is_write):
            return HierarchyResult("L1", p.l1_latency)
        if self.l2[core_id].lookup(addr, is_write):
            self._install_l1(core_id, addr, dirty=is_write)
            return HierarchyResult("L2", p.l2_latency)
        if self.l3.lookup(addr, is_write):
            self._install_l2(core_id, addr, dirty=False)
            self._install_l1(core_id, addr, dirty=is_write)
            return HierarchyResult("L3", p.l3_latency)
        # LLC miss -> memory
        line = self.l3.line_base(addr)
        if self.mshrs.merge(line, on_fill if on_fill is not None else _ignore):
            return HierarchyResult("MEM", p.l3_latency)
        req = MemoryRequest(
            addr=line,
            is_write=False,  # write misses fetch the line (write-allocate)
            core_id=core_id,
            issue_cycle=self.engine.now,
            callback=self._fill_done,
        )
        self._fill_meta[line] = (core_id, is_write)
        if self.mshrs.full:
            self.mshrs.note_stall()
            self._issue_queue.append((line, req, on_fill))
        else:
            self.mshrs.allocate(line, req, self.engine.now)
            if on_fill is not None:
                self.mshrs.merge(line, on_fill)
            # The request leaves after the (sequential) lookup latency.
            self.engine.schedule(p.l3_latency, self._send, req)
        return HierarchyResult("MEM", p.l3_latency)

    def _send(self, req: MemoryRequest) -> None:
        req.issue_cycle = self.engine.now
        self.memory_reads += 1
        self.send_fn(req)

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def _fill_done(self, req: MemoryRequest) -> None:
        line = req.addr
        waiters = self.mshrs.complete(line, req)
        core_id, dirty = self._fill_meta.pop(line, (req.core_id, False))
        self._install_l3(line)
        self._install_l2(core_id, line, dirty=False)
        self._install_l1(core_id, line, dirty=dirty)
        for w in waiters:
            w(req)
        self._drain_issue_queue()

    def _drain_issue_queue(self) -> None:
        while self._issue_queue and not self.mshrs.full:
            line, req, on_fill = self._issue_queue.popleft()
            if self.mshrs.merge(line, on_fill if on_fill is not None else _ignore):
                continue  # someone else fetched it meanwhile
            self.mshrs.allocate(line, req, self.engine.now)
            if on_fill is not None:
                self.mshrs.merge(line, on_fill)
            self.engine.schedule(0, self._send, req)

    # ------------------------------------------------------------------
    # Install/writeback helpers
    # ------------------------------------------------------------------
    def _install_l1(self, core_id: int, addr: int, dirty: bool) -> None:
        victim = self.l1[core_id].allocate(addr, dirty)
        if victim is not None and victim.dirty:
            self._writeback_into_l2(core_id, victim.addr)

    def _writeback_into_l2(self, core_id: int, addr: int) -> None:
        l2 = self.l2[core_id]
        if l2.contains(addr):
            l2.lookup(addr, is_write=True)
            return
        victim = l2.allocate(addr, dirty=True)
        if victim is not None and victim.dirty:
            self._writeback_into_l3(victim.addr)

    def _install_l2(self, core_id: int, addr: int, dirty: bool) -> None:
        victim = self.l2[core_id].allocate(addr, dirty)
        if victim is not None and victim.dirty:
            self._writeback_into_l3(victim.addr)

    def _writeback_into_l3(self, addr: int) -> None:
        if self.l3.contains(addr):
            self.l3.lookup(addr, is_write=True)
            return
        victim = self.l3.allocate(addr, dirty=True)
        if victim is not None and victim.dirty:
            self._memory_write(victim.addr)

    def _install_l3(self, addr: int) -> None:
        victim = self.l3.allocate(addr, dirty=False)
        if victim is not None and victim.dirty:
            self._memory_write(victim.addr)

    def _memory_write(self, addr: int) -> None:
        req = MemoryRequest(
            addr=addr, is_write=True, core_id=0, issue_cycle=self.engine.now
        )
        self.memory_writes += 1
        self.send_fn(req)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def llc_misses(self) -> int:
        return self.l3.misses

    def mpki(self, instructions: int) -> float:
        """LLC misses per kilo-instruction (the paper's workload classifier)."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.l3.misses / instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheHierarchy cores={len(self.l1)} "
            f"L3hr={self.l3.hit_rate():.2%} mem R/W="
            f"{self.memory_reads}/{self.memory_writes}>"
        )


def _ignore(req: MemoryRequest) -> None:
    """Placeholder waiter for fills nobody blocks on."""
