"""Processor-side substrate: cache hierarchy and trace-driven cores.

The paper evaluates on gem5 with 8 out-of-order x86 cores and a three-level
hierarchy (Table I).  Here the hierarchy is modeled functionally (hits cost
fixed latencies, misses become :class:`~repro.request.MemoryRequest`s) and
each core replays a workload trace under a reorder-buffer/MLP timing model
that preserves how memory stalls translate into lost IPC - the quantity
Figure 5 compares across prefetching schemes.
"""

from repro.cpu.cache import Cache, CacheParams
from repro.cpu.mshr import MSHRFile
from repro.cpu.hierarchy import CacheHierarchy, HierarchyParams, HierarchyResult
from repro.cpu.core import Core, CoreParams

__all__ = [
    "Cache",
    "CacheParams",
    "MSHRFile",
    "CacheHierarchy",
    "HierarchyParams",
    "HierarchyResult",
    "Core",
    "CoreParams",
]
