"""Miss Status Holding Registers: outstanding-miss tracking and merging.

Sits between the LLC and the HMC host controller.  A second miss to a line
already in flight merges into the existing entry instead of issuing another
memory request (secondary miss), which both models real MSHR behaviour and
keeps duplicate traffic from reaching the cube.  Capacity is bounded; callers
observe :meth:`MSHRFile.full` and throttle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.request import MemoryRequest

Waiter = Callable[[MemoryRequest], None]


class MSHREntry:
    """One in-flight line fill and the requests waiting on it."""

    __slots__ = ("line_addr", "primary", "waiters", "issued_cycle")

    def __init__(self, line_addr: int, primary: MemoryRequest, issued_cycle: int) -> None:
        self.line_addr = line_addr
        self.primary = primary
        self.waiters: List[Waiter] = []
        self.issued_cycle = issued_cycle


class MSHRFile:
    """Bounded file of in-flight line misses."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        self.primary_misses = 0
        self.secondary_misses = 0
        self.stalls = 0  # full() observed by callers

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(line_addr)

    def allocate(
        self, line_addr: int, primary: MemoryRequest, now: int
    ) -> MSHREntry:
        """Register a primary miss.  Raises when full or duplicate - callers
        must check :attr:`full` and :meth:`lookup` first."""
        if line_addr in self._entries:
            raise ValueError(f"line 0x{line_addr:x} already in flight")
        if self.full:
            raise RuntimeError("MSHR file full")
        entry = MSHREntry(line_addr, primary, now)
        self._entries[line_addr] = entry
        self.primary_misses += 1
        return entry

    def merge(self, line_addr: int, waiter: Waiter) -> bool:
        """Attach a waiter to an in-flight line.  Returns False if the line
        is not in flight (caller must allocate instead)."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return False
        entry.waiters.append(waiter)
        self.secondary_misses += 1
        return True

    def complete(self, line_addr: int, req: MemoryRequest) -> List[Waiter]:
        """Retire an entry when its fill returns; hands back the waiters so
        the hierarchy can notify them after installing the line."""
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            raise KeyError(f"no MSHR entry for line 0x{line_addr:x}")
        return entry.waiters

    def note_stall(self) -> None:
        self.stalls += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MSHRFile {len(self._entries)}/{self.capacity}>"
