"""Set-associative write-back cache (functional model).

Caches are modeled functionally: an access either hits (cost = the level's
fixed hit latency, applied by the hierarchy) or misses and propagates down.
Replacement is true LRU per set, write policy is write-back/write-allocate,
matching the gem5 classic caches the paper's Table I describes.

Sets are ``OrderedDict`` tag maps: ``move_to_end`` gives O(1) LRU touch and
``popitem(last=False)`` O(1) eviction, so a functional access is a handful of
dict operations - cheap enough to run millions of trace records through
three levels.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ValueError("line_bytes must be a power of two")
        if self.assoc < 1:
            raise ValueError("assoc must be >= 1")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be divisible by assoc*line_bytes"
            )
        if self.hit_latency < 0:
            raise ValueError("hit_latency must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True)
class EvictedLine:
    """A line displaced by an allocation."""

    addr: int  # line base address
    dirty: bool


class Cache:
    """One level of set-associative, write-back, write-allocate cache."""

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        if not _is_pow2(params.num_sets):
            raise ValueError("number of sets must be a power of two")
        self._set_mask = params.num_sets - 1
        self._line_shift = (params.line_bytes - 1).bit_length()
        # each set: OrderedDict mapping tag -> dirty flag, LRU order
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(params.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (self.params.num_sets.bit_length() - 1)

    def line_base(self, addr: int) -> int:
        return (addr >> self._line_shift) << self._line_shift

    def _rebuild_addr(self, index: int, tag: int) -> int:
        line = (tag << (self.params.num_sets.bit_length() - 1)) | index
        return line << self._line_shift

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def lookup(self, addr: int, is_write: bool) -> bool:
        """Probe without allocating.  On a hit, updates LRU and dirty state."""
        index, tag = self._index_tag(addr)
        s = self._sets[index]
        if tag in s:
            s.move_to_end(tag)
            if is_write:
                s[tag] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def allocate(self, addr: int, dirty: bool) -> Optional[EvictedLine]:
        """Install a line (after a miss was filled).  Returns the displaced
        line, if any, so the caller can propagate dirty data downward."""
        index, tag = self._index_tag(addr)
        s = self._sets[index]
        if tag in s:
            # Already present (e.g. racing fills): merge dirty state.
            s.move_to_end(tag)
            s[tag] = s[tag] or dirty
            return None
        victim: Optional[EvictedLine] = None
        if len(s) >= self.params.assoc:
            vtag, vdirty = s.popitem(last=False)
            self.evictions += 1
            if vdirty:
                self.dirty_evictions += 1
            victim = EvictedLine(self._rebuild_addr(index, vtag), vdirty)
        s[tag] = dirty
        return victim

    def invalidate(self, addr: int) -> Optional[bool]:
        """Drop a line; returns its dirty flag or None if absent."""
        index, tag = self._index_tag(addr)
        return self._sets[index].pop(tag, None)

    def contains(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def is_dirty(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        return bool(self._sets[index].get(tag, False))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def occupancy(self) -> int:
        """Resident line count (for tests and warm-up checks)."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.params
        return (
            f"<Cache {p.name} {p.size_bytes // 1024}KB/{p.assoc}w "
            f"hr={self.hit_rate():.2%}>"
        )
