"""Event-count energy model for the HMC.

Figure 9 of the paper reports HMC energy *normalized to the BASE scheme*, so
only relative energy matters and an event-count model is sufficient: each
DRAM command, TSV row transfer, prefetch-buffer access and serial-link flit is
charged a fixed energy, plus a background (static) term proportional to
simulated time.

Per-operation constants are drawn from published HMC/3D-DRAM numbers
(HMC consortium spec 2.1 figures, Woo et al. HPCA'10 TSV studies,
Jeddeloh & Keeth VLSI'12): they need only preserve the *ordering*
ACT/PRE >> row TSV transfer > line read/write > buffer access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.dram.bank import Bank


@dataclass(frozen=True)
class EnergyParams:
    """Energy per operation, in picojoules, plus background power.

    ``background_pj_per_cycle`` covers refresh, PLL and leakage for the whole
    cube; it is charged once per simulation, not per vault.
    """

    act_pj: float = 900.0  # one row activation (1 KB row)
    pre_pj: float = 350.0  # one precharge
    read_line_pj: float = 160.0  # one 64 B column read burst
    write_line_pj: float = 170.0  # one 64 B column write burst
    row_tsv_pj: float = 640.0  # streaming 1 KB over the vault TSVs
    buffer_access_pj: float = 20.0  # prefetch-buffer (SRAM) line access
    link_flit_pj: float = 48.0  # one 16 B flit over a SerDes link
    refresh_pj: float = 1400.0  # one per-bank REFRESH cycle
    background_pj_per_cycle: float = 1.1

    def __post_init__(self) -> None:
        for name in (
            "act_pj",
            "pre_pj",
            "read_line_pj",
            "write_line_pj",
            "row_tsv_pj",
            "buffer_access_pj",
            "link_flit_pj",
            "refresh_pj",
            "background_pj_per_cycle",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class EnergyModel:
    """Accumulates operation counts and converts them to energy.

    Counts for DRAM commands come from :class:`~repro.dram.bank.Bank`
    counters via :meth:`charge_banks`; buffer and link activity is charged
    directly by the components that produce it.
    """

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()
        self.acts = 0
        self.pres = 0
        self.line_reads = 0
        self.line_writes = 0
        self.row_transfers = 0
        self.buffer_accesses = 0
        self.link_flits = 0
        self.refreshes = 0
        self.cycles = 0

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge_banks(self, banks: Iterable[Bank]) -> None:
        """Pull command counts from a set of banks (idempotent only if called
        once per bank; callers charge at end of simulation)."""
        for b in banks:
            self.acts += b.acts
            self.pres += b.pres
            self.line_reads += b.reads + b.prefetch_line_reads
            self.line_writes += b.writes
            self.row_transfers += b.row_fetches + b.row_restores
            self.refreshes += b.refreshes

    def charge_buffer_access(self, count: int = 1) -> None:
        self.buffer_accesses += count

    def charge_link_flits(self, count: int) -> None:
        self.link_flits += count

    def charge_row_transfer(self, count: int = 1) -> None:
        self.row_transfers += count

    def set_cycles(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.cycles = cycles

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def breakdown_pj(self) -> Dict[str, float]:
        """Energy per category in picojoules."""
        p = self.params
        return {
            "activate": self.acts * p.act_pj,
            "precharge": self.pres * p.pre_pj,
            "read": self.line_reads * p.read_line_pj,
            "write": self.line_writes * p.write_line_pj,
            "row_tsv": self.row_transfers * p.row_tsv_pj,
            "buffer": self.buffer_accesses * p.buffer_access_pj,
            "link": self.link_flits * p.link_flit_pj,
            "refresh": self.refreshes * p.refresh_pj,
            "background": self.cycles * p.background_pj_per_cycle,
        }

    def total_pj(self) -> float:
        return sum(self.breakdown_pj().values())

    def dynamic_pj(self) -> float:
        """Energy excluding the background term."""
        b = self.breakdown_pj()
        return self.total_pj() - b["background"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EnergyModel total={self.total_pj():.1f}pJ acts={self.acts}>"
