"""DRAM command vocabulary.

Commands are recorded (not replayed) by the bank model: each demand access or
prefetch row-fetch is decomposed into the ACT/PRE/RD/WR primitives it implies,
and the energy model in :mod:`repro.dram.energy` charges per command.  Keeping
the command trace explicit also lets tests assert exact command sequences for
scripted access patterns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandKind(enum.Enum):
    """The DRAM command primitives the vault controller can issue."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    ROW_FETCH = "ROWF"  # whole-row stream to prefetch buffer over TSVs
    ROW_RESTORE = "ROWR"  # dirty prefetched row written back to the bank
    REFRESH = "REF"


@dataclass(frozen=True)
class Command:
    """One issued DRAM command, for command-trace tests and energy."""

    kind: CommandKind
    bank: int
    row: int
    cycle: int

    def __str__(self) -> str:
        return f"{self.kind.value}(b{self.bank},r{self.row})@{self.cycle}"
