"""DRAM timing parameters and CPU-cycle conversion.

Table I of the paper specifies DDR3-1600 timing (tRCD = tRP = tCL = 11
memory-bus cycles) for the DRAM layers, a 3 GHz CPU, and 1 KB row buffers.
The simulator runs on the CPU clock, so every memory-cycle quantity is
converted once, at configuration time, via the clock ratio
``cpu_freq_ghz / dram_freq_ghz`` and rounded up (a command can never appear
faster than its true duration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _to_cpu(mem_cycles: int, ratio: float) -> int:
    """Convert memory-bus cycles to CPU cycles, rounding up."""
    return int(math.ceil(mem_cycles * ratio))


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing in memory-bus cycles plus derived CPU-cycle values.

    Attributes mirror standard DDR nomenclature:

    * ``trcd`` - RAS-to-CAS delay (ACTIVATE until READ/WRITE may issue).
    * ``trp``  - row precharge time.
    * ``tcl``  - CAS latency (READ until first data beat).
    * ``tburst`` - data burst length for one 64 B cache line.
    * ``twr``  - write recovery (last write data until PRECHARGE may issue).
    * ``tras`` - minimum ACTIVATE-to-PRECHARGE interval.
    * ``trow_tsv`` - cycles to stream a whole 1 KB row over the vault TSV
      bundle into the prefetch buffer.  The TSV bundle is wide, but the
      transfer is paced by the bank's column access rate; the default (48,
      i.e. 12 back-to-back bursts' worth) sits between the tCCD-bound worst
      case (16 lines x tburst = 64) and the wide-TSV ideal.
    """

    cpu_freq_ghz: float = 3.0
    dram_freq_ghz: float = 0.8  # DDR3-1600 bus: 800 MHz
    trcd: int = 11
    trp: int = 11
    tcl: int = 11
    tburst: int = 4
    twr: int = 12
    tras: int = 28
    trow_tsv: int = 48
    trefi: int = 6240  # average refresh interval (7.8 us @ 800 MHz)
    trfc: int = 128  # refresh cycle time (160 ns @ 800 MHz)

    # Derived CPU-cycle values (filled in __post_init__).
    ratio: float = field(init=False, default=0.0)
    trcd_cpu: int = field(init=False, default=0)
    trefi_cpu: int = field(init=False, default=0)
    trfc_cpu: int = field(init=False, default=0)
    trp_cpu: int = field(init=False, default=0)
    tcl_cpu: int = field(init=False, default=0)
    tburst_cpu: int = field(init=False, default=0)
    twr_cpu: int = field(init=False, default=0)
    tras_cpu: int = field(init=False, default=0)
    trow_tsv_cpu: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.cpu_freq_ghz <= 0 or self.dram_freq_ghz <= 0:
            raise ValueError("clock frequencies must be positive")
        for name in ("trcd", "trp", "tcl", "tburst", "twr", "tras", "trow_tsv",
                     "trefi", "trfc"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        ratio = self.cpu_freq_ghz / self.dram_freq_ghz
        object.__setattr__(self, "ratio", ratio)
        for name in ("trcd", "trp", "tcl", "tburst", "twr", "tras", "trow_tsv",
                     "trefi", "trfc"):
            object.__setattr__(self, f"{name}_cpu", _to_cpu(getattr(self, name), ratio))

    # ------------------------------------------------------------------
    # Composite latencies (CPU cycles) used by the bank model
    # ------------------------------------------------------------------
    @property
    def row_hit_read(self) -> int:
        """READ to an already-open row: CAS latency + burst."""
        return self.tcl_cpu + self.tburst_cpu

    @property
    def row_empty_read(self) -> int:
        """READ to a precharged bank: ACTIVATE + CAS + burst."""
        return self.trcd_cpu + self.tcl_cpu + self.tburst_cpu

    @property
    def row_conflict_read(self) -> int:
        """READ needing PRECHARGE of a different open row first."""
        return self.trp_cpu + self.trcd_cpu + self.tcl_cpu + self.tburst_cpu

    @property
    def row_hit_write(self) -> int:
        return self.tcl_cpu + self.tburst_cpu

    @property
    def row_empty_write(self) -> int:
        return self.trcd_cpu + self.tcl_cpu + self.tburst_cpu

    @property
    def row_conflict_write(self) -> int:
        return self.trp_cpu + self.trcd_cpu + self.tcl_cpu + self.tburst_cpu

    def row_fetch_to_buffer(self, row_open: bool) -> int:
        """Cycles for an internal whole-row transfer to the prefetch buffer.

        The row is activated if necessary, streamed over the TSVs, and the
        bank is precharged afterwards (the paper precharges after every
        prefetch so the bank is ready for the next request).
        """
        act = 0 if row_open else self.trcd_cpu
        return act + self.tcl_cpu + self.trow_tsv_cpu + self.trp_cpu

    def row_writeback_from_buffer(self) -> int:
        """Cycles to restore a dirty prefetched row into its bank."""
        return self.trcd_cpu + self.trow_tsv_cpu + self.twr_cpu + self.trp_cpu
