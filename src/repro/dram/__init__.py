"""DRAM substrate: per-bank row-buffer state machines, timing arithmetic and
an event-count energy model.

The model follows the paper's Table I: DDR3-1600 style timing (tRCD = tRP =
tCL = 11 memory cycles) inside each HMC vault, an open-page policy, and
1 KB row buffers.  All externally visible times are expressed in CPU cycles
(3 GHz); :class:`~repro.dram.timing.DRAMTimings` performs the conversion.
"""

from repro.dram.timing import DRAMTimings
from repro.dram.commands import Command, CommandKind
from repro.dram.bank import Bank, AccessKind, AccessResult
from repro.dram.energy import EnergyModel, EnergyParams

__all__ = [
    "DRAMTimings",
    "Command",
    "CommandKind",
    "Bank",
    "AccessKind",
    "AccessResult",
    "EnergyModel",
    "EnergyParams",
]
