"""Shared per-vault TSV data bus.

All 16 banks of a vault share one TSV bundle to the vault controller.  Demand
line transfers occupy it for one burst; whole-row prefetch transfers occupy
it for the full row streaming time.  This shared resource is the central
performance trade-off of the paper: aggressive whole-row prefetching (BASE)
saturates the vault's internal bandwidth and delays demand transfers, while
selective prefetching (CAMPS) pays the row-transfer cost only for rows that
will be used.

The bus is a simple busy-until serialization server; reservations are
arithmetic (no simulation events).
"""

from __future__ import annotations


class TsvBus:
    """Serialization server for one vault's TSV data bundle."""

    __slots__ = ("vault_id", "busy_until", "reservations", "busy_cycles")

    def __init__(self, vault_id: int = 0) -> None:
        self.vault_id = vault_id
        self.busy_until = 0
        self.reservations = 0
        self.busy_cycles = 0

    def reserve(self, earliest: int, duration: int) -> int:
        """Reserve the bus for ``duration`` cycles, no earlier than
        ``earliest``.  Returns the start cycle of the reservation."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(earliest, self.busy_until)
        self.busy_until = start + duration
        self.reservations += 1
        self.busy_cycles += duration
        return start

    def utilization(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TsvBus v{self.vault_id} busy_until={self.busy_until}>"
