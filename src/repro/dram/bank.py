"""Per-bank row-buffer state machine.

Each HMC vault contains 16 banks (2 per DRAM layer x 8 layers, Table I).
A bank is modeled as an open-page row buffer plus a ``busy_until`` horizon:
the vault scheduler asks the bank to compute the service window for a demand
access or a prefetch row-fetch, and the bank resolves row hit / empty /
conflict, enforces tRCD/tRP/tCL/tRAS arithmetic, and tallies the command
counts the energy model consumes.

Row-buffer *conflicts* - a demand access finding a different row open - are
the central statistic of the paper (Figure 6) and are counted here, at the
single point where every access resolves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.dram.bus import TsvBus
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import DRAMTimings
from repro.obs.hooks import noop


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class RowOutcome(enum.Enum):
    """How a demand access found the row buffer."""

    HIT = "hit"  # requested row already open
    EMPTY = "empty"  # bank precharged, plain activate
    CONFLICT = "conflict"  # different row open: precharge + activate


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Service window of one access: when it started occupying the bank,
    when its data is available, and how the row buffer was found."""

    start: int
    finish: int
    outcome: RowOutcome


class Bank:
    """One DRAM bank with an open-page row buffer.

    The bank does not schedule itself; the vault controller decides *when* to
    send an access, the bank decides *how long* it takes and mutates state.
    """

    __slots__ = (
        "bank_id",
        "timings",
        "bus",
        "open_row",
        "busy_until",
        "last_activate",
        "acts",
        "pres",
        "reads",
        "writes",
        "row_fetches",
        "row_restores",
        "prefetch_line_reads",
        "conflicts",
        "hits",
        "empties",
        "closed_page",
        "refreshes",
        "record_commands",
        "command_log",
        "_tracer",
        "_log",
        "_emit_conflict",
    )

    def __init__(
        self,
        bank_id: int,
        timings: DRAMTimings,
        record_commands: bool = False,
        bus: Optional[TsvBus] = None,
        closed_page: bool = False,
    ) -> None:
        self.bank_id = bank_id
        self.timings = timings
        # The shared per-vault TSV data bus; a private bus (no sharing) is
        # used when standalone, e.g. in unit tests.
        self.bus = bus if bus is not None else TsvBus()
        self.open_row: Optional[int] = None
        self.busy_until: int = 0
        self.last_activate: int = -(10**9)
        # command counters (energy + figure 6 inputs)
        self.acts = 0
        self.pres = 0
        self.reads = 0
        self.writes = 0
        self.row_fetches = 0
        self.row_restores = 0
        self.prefetch_line_reads = 0
        self.conflicts = 0
        self.hits = 0
        self.empties = 0
        # closed-page policy: auto-precharge after every demand access
        self.closed_page = closed_page
        self.refreshes = 0
        self.record_commands = record_commands
        self.command_log: List[Command] = []
        self._tracer = None
        self._rebind_hooks()

    # ------------------------------------------------------------------
    # Instrumentation (see repro.obs.hooks): ``_log`` and
    # ``_emit_conflict`` are instance attributes resolved to either a real
    # emitter or the shared noop, so the command paths pay zero branches.
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._rebind_hooks()

    def _rebind_hooks(self) -> None:
        tracer = self._tracer
        self._emit_conflict = tracer.bank_conflict if tracer is not None else noop
        if self.record_commands or tracer is not None:
            self._log = self._log_command
        else:
            self._log = noop

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _log_command(self, kind: CommandKind, row: int, cycle: int) -> None:
        if self.record_commands:
            self.command_log.append(Command(kind, self.bank_id, row, cycle))
        tracer = self._tracer
        if tracer is not None:
            tracer.bank_command(self.bus.vault_id, self.bank_id, kind, row, cycle)

    def _earliest_precharge(self, at: int) -> int:
        """PRECHARGE may not issue before tRAS elapses after ACTIVATE."""
        return max(at, self.last_activate + self.timings.tras_cpu)

    def _data_transfer(self, column_cmd_at: int, duration: int) -> int:
        """Move data over the shared TSV bus: the transfer may begin tCL
        after the column command and must win the bus.  Returns the cycle
        the transfer completes."""
        start = self.bus.reserve(column_cmd_at + self.timings.tcl_cpu, duration)
        return start + duration

    # ------------------------------------------------------------------
    # Queries (no mutation)
    # ------------------------------------------------------------------
    def is_row_hit(self, row: int) -> bool:
        return self.open_row == row

    def is_idle(self, now: int) -> bool:
        return now >= self.busy_until

    def classify(self, row: int) -> RowOutcome:
        """How would an access to ``row`` find the row buffer right now?"""
        if self.open_row is None:
            return RowOutcome.EMPTY
        if self.open_row == row:
            return RowOutcome.HIT
        return RowOutcome.CONFLICT

    # ------------------------------------------------------------------
    # Mutating operations
    # ------------------------------------------------------------------
    def access(self, kind: AccessKind, row: int, now: int) -> AccessResult:
        """Serve one 64 B demand access to ``row`` starting no earlier than
        ``now``.  Leaves the row open (open-page policy, Table I).

        The hottest bank entry point: row-buffer classification and the TSV
        reservation are inlined (see :meth:`classify` / ``TsvBus.reserve``
        for the reference semantics)."""
        t = self.timings
        busy = self.busy_until
        start = now if now > busy else busy
        open_row = self.open_row
        # ``_log`` resolves to the shared noop unless commands are recorded
        # or a tracer is attached; skipping the empty call keeps the common
        # path branch-only (same guard style as the emit hooks).
        log = self._log
        logging = log is not noop

        if open_row == row and open_row is not None:
            outcome = RowOutcome.HIT
            self.hits += 1
            data_start = start
        elif open_row is None:
            outcome = RowOutcome.EMPTY
            self.empties += 1
            if logging:
                log(CommandKind.ACTIVATE, row, start)
            self.acts += 1
            self.last_activate = start
            data_start = start + t.trcd_cpu
        else:
            outcome = RowOutcome.CONFLICT
            self.conflicts += 1
            self._emit_conflict(self.bus.vault_id, self.bank_id, open_row, row, start)
            tras_done = self.last_activate + t.tras_cpu
            pre_at = start if start > tras_done else tras_done
            if logging:
                log(CommandKind.PRECHARGE, open_row, pre_at)
            self.pres += 1
            act_at = pre_at + t.trp_cpu
            if logging:
                log(CommandKind.ACTIVATE, row, act_at)
            self.acts += 1
            self.last_activate = act_at
            data_start = act_at + t.trcd_cpu

        if kind is AccessKind.READ:
            if logging:
                log(CommandKind.READ, row, data_start)
            self.reads += 1
        else:
            if logging:
                log(CommandKind.WRITE, row, data_start)
            self.writes += 1

        # inline self._data_transfer(data_start, t.tburst_cpu)
        bus = self.bus
        dur = t.tburst_cpu
        earliest = data_start + t.tcl_cpu
        bus_busy = bus.busy_until
        xfer = earliest if earliest > bus_busy else bus_busy
        finish = xfer + dur
        bus.busy_until = finish
        bus.reservations += 1
        bus.busy_cycles += dur

        self.open_row = row
        self.busy_until = finish
        if self.closed_page:
            # Auto-precharge: data is returned at `finish`; the bank stays
            # busy through the precharge but the requester is not delayed.
            pre_at = self._earliest_precharge(finish)
            self._log(CommandKind.PRECHARGE, row, pre_at)
            self.pres += 1
            self.open_row = None
            self.busy_until = pre_at + t.trp_cpu
        return AccessResult(start=start, finish=finish, outcome=outcome)

    def fetch_row(self, row: int, now: int) -> AccessResult:
        """Stream the whole row into the prefetch buffer over the TSVs.

        Mirrors the paper: after the fetch the bank is precharged so the
        next access to a *different* row pays no conflict penalty.
        """
        t = self.timings
        start = max(now, self.busy_until)
        outcome = self.classify(row)
        if outcome is RowOutcome.CONFLICT:
            # Fetching a non-open row while another is open: close it first.
            # This is controller-initiated, not a demand conflict, so it does
            # not count toward the row-buffer-conflict statistic.
            pre_at = self._earliest_precharge(start)
            self._log(CommandKind.PRECHARGE, self.open_row or 0, pre_at)
            self.pres += 1
            act_at = pre_at + t.trp_cpu
            self._log(CommandKind.ACTIVATE, row, act_at)
            self.acts += 1
            self.last_activate = act_at
            stream_start = act_at + t.trcd_cpu
        elif outcome is RowOutcome.EMPTY:
            self._log(CommandKind.ACTIVATE, row, start)
            self.acts += 1
            self.last_activate = start
            stream_start = start + t.trcd_cpu
        else:
            stream_start = start

        self._log(CommandKind.ROW_FETCH, row, stream_start)
        self.row_fetches += 1
        stream_end = self._data_transfer(stream_start, t.trow_tsv_cpu)
        pre_at = self._earliest_precharge(stream_end)
        self._log(CommandKind.PRECHARGE, row, pre_at)
        self.pres += 1
        finish = pre_at + t.trp_cpu
        self.open_row = None
        self.busy_until = finish
        return AccessResult(start=start, finish=finish, outcome=outcome)

    def fetch_lines(
        self, row: int, n_lines: int, now: int, precharge_after: bool = False
    ) -> AccessResult:
        """Stream ``n_lines`` cache lines of ``row`` to the prefetch buffer.

        Used by degree-based schemes (MMD) that piggyback on the open row
        instead of moving the whole row.  Counted as column reads for energy
        purposes but tracked separately from demand reads.
        """
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        t = self.timings
        start = max(now, self.busy_until)
        outcome = self.classify(row)
        if outcome is RowOutcome.CONFLICT:
            pre_at = self._earliest_precharge(start)
            self._log(CommandKind.PRECHARGE, self.open_row or 0, pre_at)
            self.pres += 1
            act_at = pre_at + t.trp_cpu
            self._log(CommandKind.ACTIVATE, row, act_at)
            self.acts += 1
            self.last_activate = act_at
            data_start = act_at + t.trcd_cpu
        elif outcome is RowOutcome.EMPTY:
            self._log(CommandKind.ACTIVATE, row, start)
            self.acts += 1
            self.last_activate = start
            data_start = start + t.trcd_cpu
        else:
            data_start = start

        self._log(CommandKind.READ, row, data_start)
        self.prefetch_line_reads += n_lines
        finish = self._data_transfer(data_start, n_lines * t.tburst_cpu)
        self.open_row = row
        self.busy_until = finish
        if precharge_after:
            pre_at = self._earliest_precharge(finish)
            self._log(CommandKind.PRECHARGE, row, pre_at)
            self.pres += 1
            finish = pre_at + t.trp_cpu
            self.open_row = None
            self.busy_until = finish
        return AccessResult(start=start, finish=finish, outcome=outcome)

    def restore_row(self, row: int, now: int) -> AccessResult:
        """Write a dirty prefetched row back from the buffer into the bank."""
        t = self.timings
        start = max(now, self.busy_until)
        outcome = self.classify(row)
        if outcome is not RowOutcome.EMPTY and self.open_row != row:
            pre_at = self._earliest_precharge(start)
            self._log(CommandKind.PRECHARGE, self.open_row or 0, pre_at)
            self.pres += 1
            start = pre_at + t.trp_cpu
        if self.open_row != row:
            self._log(CommandKind.ACTIVATE, row, start)
            self.acts += 1
            self.last_activate = start
            start += t.trcd_cpu
        self._log(CommandKind.ROW_RESTORE, row, start)
        self.row_restores += 1
        stream_end = self.bus.reserve(start, t.trow_tsv_cpu) + t.trow_tsv_cpu + t.twr_cpu
        pre_at = self._earliest_precharge(stream_end)
        self._log(CommandKind.PRECHARGE, row, pre_at)
        self.pres += 1
        finish = pre_at + t.trp_cpu
        self.open_row = None
        self.busy_until = finish
        return AccessResult(start=max(now, 0), finish=finish, outcome=outcome)

    def refresh(self, now: int) -> int:
        """One per-bank REFRESH: close any open row, occupy the bank for
        tRFC.  Returns the cycle the bank is usable again."""
        t = self.timings
        start = max(now, self.busy_until)
        if self.open_row is not None:
            start = self._earliest_precharge(start)
            self._log(CommandKind.PRECHARGE, self.open_row, start)
            self.pres += 1
            self.open_row = None
            start += t.trp_cpu
        self._log(CommandKind.REFRESH, 0, start)
        self.refreshes += 1
        self.busy_until = start + t.trfc_cpu
        return self.busy_until

    def precharge(self, now: int) -> int:
        """Explicitly close the open row; returns the cycle the bank is ready."""
        if self.open_row is None:
            return max(now, self.busy_until)
        start = self._earliest_precharge(max(now, self.busy_until))
        self._log(CommandKind.PRECHARGE, self.open_row, start)
        self.pres += 1
        self.open_row = None
        self.busy_until = start + self.timings.trp_cpu
        return self.busy_until

    def reset_counters(self) -> None:
        """Zero the statistics counters without touching bank state (used
        for post-warmup measurement windows)."""
        self.acts = 0
        self.pres = 0
        self.reads = 0
        self.writes = 0
        self.row_fetches = 0
        self.row_restores = 0
        self.prefetch_line_reads = 0
        self.conflicts = 0
        self.hits = 0
        self.empties = 0
        self.refreshes = 0
        self.command_log.clear()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def demand_accesses(self) -> int:
        return self.hits + self.empties + self.conflicts

    def conflict_rate(self) -> float:
        """Fraction of demand accesses that hit a row-buffer conflict."""
        n = self.demand_accesses
        return self.conflicts / n if n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Bank {self.bank_id} open={self.open_row} busy_until={self.busy_until} "
            f"acc={self.demand_accesses} conf={self.conflicts}>"
        )
