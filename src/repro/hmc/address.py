"""Physical address mapping: RoRaBaVaCo (Table I).

From most to least significant: Row | Rank | Bank | Vault | Column, with the
64 B line offset below the column bits.  Putting the vault bits *low* (just
above the column) interleaves consecutive rows' worth of lines across vaults,
which is what gives the HMC its bank-level parallelism on streaming access -
and, crucially for CAMPS, keeps all 16 lines of one DRAM row inside one vault
so a whole-row prefetch captures the spatial locality of the stream.

All field extraction is mask/shift arithmetic; the mapping also offers
vectorized NumPy decode for trace preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hmc.config import HMCConfig


@dataclass(frozen=True)
class DecodedAddress:
    """The coordinates of one cache line inside the cube."""

    vault: int
    bank: int
    row: int
    column: int  # line index within the row (0 .. lines_per_row-1)

    def __str__(self) -> str:
        return f"v{self.vault}.b{self.bank}.r{self.row}.c{self.column}"


#: Field order strings accepted by :class:`AddressMapping`, written MSB
#: first the way the paper writes "RoRaBaVaCo".  The 64 B line offset always
#: occupies the lowest bits.
MAPPING_ORDERS = {
    "RoBaVaCo": ("row", "bank", "vault", "column"),  # Table I (rank_bits=0)
    "RoVaBaCo": ("row", "vault", "bank", "column"),
    "RoCoBaVa": ("row", "column", "bank", "vault"),
    "RoCoVaBa": ("row", "column", "vault", "bank"),
    "RoBaCoVa": ("row", "bank", "column", "vault"),
    "RoVaCoBa": ("row", "vault", "column", "bank"),
}


class AddressMapping:
    """Bidirectional address <-> (vault, bank, row, column) mapping.

    ``order`` selects the field layout; the default ``"RoBaVaCo"`` is the
    paper's RoRaBaVaCo with zero rank bits.  Other orders are provided for
    the mapping ablation - e.g. ``"RoCoBaVa"`` puts the column bits high,
    destroying the property that a row's 16 lines live in one vault (and
    with it most of whole-row prefetching's value).
    """

    def __init__(self, config: HMCConfig, order: Optional[str] = None) -> None:
        self.config = config
        order = order or config.address_mapping
        if order not in MAPPING_ORDERS:
            raise ValueError(
                f"unknown mapping order {order!r}; "
                f"available: {', '.join(MAPPING_ORDERS)}"
            )
        self.order = order
        self.offset_bits = (config.line_bytes - 1).bit_length()
        self.column_bits = (config.lines_per_row - 1).bit_length()
        self.vault_bits = (config.vaults - 1).bit_length()
        self.bank_bits = (config.banks_per_vault - 1).bit_length()
        self.rank_bits = config.rank_bits

        widths = {
            "column": self.column_bits,
            "vault": self.vault_bits,
            "bank": self.bank_bits,
        }
        shift = self.offset_bits
        shifts = {}
        for field in reversed(MAPPING_ORDERS[order]):  # LSB upward
            shifts[field] = shift
            shift += widths.get(field, 0)  # "row" takes all remaining bits
        self.column_shift = shifts["column"]
        self.vault_shift = shifts["vault"]
        self.bank_shift = shifts["bank"]
        self.rank_shift = shifts["row"]
        self.row_shift = shifts["row"] + self.rank_bits

        self.column_mask = config.lines_per_row - 1
        self.vault_mask = config.vaults - 1
        self.bank_mask = config.banks_per_vault - 1

    # ------------------------------------------------------------------
    # Scalar interface (hot path: one decode per memory request)
    # ------------------------------------------------------------------
    def decode(self, addr: int) -> DecodedAddress:
        """Decode a byte address into cube coordinates."""
        if addr < 0:
            raise ValueError(f"address must be non-negative, got {addr}")
        return DecodedAddress(
            vault=(addr >> self.vault_shift) & self.vault_mask,
            bank=(addr >> self.bank_shift) & self.bank_mask,
            row=addr >> self.row_shift,
            column=(addr >> self.column_shift) & self.column_mask,
        )

    def encode(self, vault: int, bank: int, row: int, column: int = 0) -> int:
        """Build the byte address of a line from its cube coordinates."""
        if not 0 <= vault < self.config.vaults:
            raise ValueError(f"vault {vault} out of range")
        if not 0 <= bank < self.config.banks_per_vault:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= column < self.config.lines_per_row:
            raise ValueError(f"column {column} out of range")
        if row < 0:
            raise ValueError("row must be non-negative")
        return (
            (row << self.row_shift)
            | (bank << self.bank_shift)
            | (vault << self.vault_shift)
            | (column << self.column_shift)
        )

    def line_address(self, addr: int) -> int:
        """Round a byte address down to its 64 B line base."""
        return addr & ~((1 << self.offset_bits) - 1)

    def row_key(self, addr: int) -> Tuple[int, int, int]:
        """(vault, bank, row) identity of the DRAM row holding ``addr``."""
        return (
            (addr >> self.vault_shift) & self.vault_mask,
            (addr >> self.bank_shift) & self.bank_mask,
            addr >> self.row_shift,
        )

    # ------------------------------------------------------------------
    # Vectorized interface (trace preprocessing)
    # ------------------------------------------------------------------
    def decode_many(
        self, addrs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized decode; returns (vault, bank, row, column) arrays."""
        a = np.asarray(addrs, dtype=np.int64)
        vault = (a >> self.vault_shift) & self.vault_mask
        bank = (a >> self.bank_shift) & self.bank_mask
        row = a >> self.row_shift
        column = (a >> self.column_shift) & self.column_mask
        return vault, bank, row, column

    def encode_many(
        self,
        vault: np.ndarray,
        bank: np.ndarray,
        row: np.ndarray,
        column: np.ndarray,
    ) -> np.ndarray:
        """Vectorized encode of coordinate arrays into byte addresses."""
        return (
            (np.asarray(row, dtype=np.int64) << self.row_shift)
            | (np.asarray(bank, dtype=np.int64) << self.bank_shift)
            | (np.asarray(vault, dtype=np.int64) << self.vault_shift)
            | (np.asarray(column, dtype=np.int64) << self.column_shift)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AddressMapping Ro[{self.row_shift}+]Ba[{self.bank_shift}"
            f"+{self.bank_bits}]Va[{self.vault_shift}+{self.vault_bits}]"
            f"Co[{self.column_shift}+{self.column_bits}]>"
        )
