"""Central configuration: the paper's Table I, as one frozen dataclass.

Every experiment builds an :class:`HMCConfig` (usually the default, which *is*
Table I) and threads it through the device, vault controllers, prefetchers and
host.  Ablation benches override single fields via ``dataclasses.replace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.dram.energy import EnergyParams
from repro.dram.timing import DRAMTimings
from repro.faults import LinkFaultConfig


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class HMCConfig:
    """HMC organization and latency parameters (defaults = Table I).

    Structure
    ---------
    * 32 vaults, 16 banks per vault (2 banks/vault-layer x 8 DRAM layers).
    * 1 KB row buffers, 64 B cache lines (16 lines per row).
    * Address mapping RoRaBaVaCo (row : rank : bank : vault : column).

    Vault controller
    ----------------
    * Separate read/write queues of 32 entries, FR-FCFS scheduling,
      open-page policy.

    Prefetch buffer
    ---------------
    * 16 KB per vault = 16 fully-associative 1 KB row entries,
      22-cycle hit latency.

    Links
    -----
    * 4 full-duplex serial links, 16 lanes each at 12.5 Gbps.
    """

    vaults: int = 32
    banks_per_vault: int = 16
    row_bytes: int = 1024
    line_bytes: int = 64
    rank_bits: int = 0

    timings: DRAMTimings = field(default_factory=DRAMTimings)
    energy: EnergyParams = field(default_factory=EnergyParams)

    read_queue_depth: int = 32
    write_queue_depth: int = 32

    links: int = 4
    link_lanes: int = 16
    link_gbps_per_lane: float = 12.5
    serdes_latency: int = 12  # fixed SerDes + flight latency per direction
    crossbar_latency: int = 4
    request_header_bytes: int = 16
    flit_bytes: int = 16

    pf_buffer_entries: int = 16
    pf_hit_latency: int = 22

    # Link fault injection (repro.faults); the default models healthy links
    # and leaves the link model byte-identical to the fault-free path.
    faults: LinkFaultConfig = field(default_factory=LinkFaultConfig)

    # Extensions beyond the paper's fixed setup (defaults match the paper):
    page_policy: str = "open"  # "open" (Table I) or "closed"
    refresh_enabled: bool = False  # per-bank REFRESH every tREFI
    address_mapping: str = "RoBaVaCo"  # Table I's RoRaBaVaCo (rank_bits=0)

    def __post_init__(self) -> None:
        for name in ("vaults", "banks_per_vault", "row_bytes", "line_bytes"):
            if not _is_pow2(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two, got {getattr(self, name)}")
        if self.line_bytes > self.row_bytes:
            raise ValueError("line_bytes cannot exceed row_bytes")
        if self.rank_bits < 0:
            raise ValueError("rank_bits must be non-negative")
        for name in (
            "read_queue_depth",
            "write_queue_depth",
            "links",
            "link_lanes",
            "pf_buffer_entries",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("serdes_latency", "crossbar_latency", "pf_hit_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not _is_pow2(self.flit_bytes):
            raise ValueError("flit_bytes must be a power of two")
        if self.link_gbps_per_lane <= 0:
            raise ValueError("link_gbps_per_lane must be positive")
        if self.page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page_policy {self.page_policy!r}")
        from repro.hmc.address import MAPPING_ORDERS  # local: avoid cycle

        if self.address_mapping not in MAPPING_ORDERS:
            raise ValueError(
                f"unknown address_mapping {self.address_mapping!r}; "
                f"available: {', '.join(MAPPING_ORDERS)}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    @property
    def total_banks(self) -> int:
        return self.vaults * self.banks_per_vault

    @property
    def pf_buffer_bytes(self) -> int:
        """Per-vault prefetch buffer capacity (16 x 1 KB = 16 KB, Table I)."""
        return self.pf_buffer_entries * self.row_bytes

    @property
    def link_bytes_per_cycle(self) -> float:
        """Per-direction link bandwidth in bytes per CPU cycle."""
        gbps = self.link_lanes * self.link_gbps_per_lane
        bytes_per_ns = gbps / 8.0
        return bytes_per_ns / self.timings.cpu_freq_ghz

    def with_overrides(self, **kwargs: Any) -> "HMCConfig":
        """Convenience wrapper around :func:`dataclasses.replace`."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialization (experiment configs as files)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Nested plain-dict form (JSON-serializable)."""
        import dataclasses as _dc

        return _dc.asdict(self)

    def to_json(self, path: Any = None, indent: int = 2) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        import json
        from pathlib import Path

        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_dict(cls, data: dict) -> "HMCConfig":
        """Rebuild from :meth:`to_dict` output (validates all fields)."""
        from repro.dram.energy import EnergyParams
        from repro.dram.timing import DRAMTimings
        import dataclasses as _dc

        data = dict(data)
        if isinstance(data.get("timings"), dict):
            t = {
                k: v
                for k, v in data["timings"].items()
                if k in {f.name for f in _dc.fields(DRAMTimings) if f.init}
            }
            data["timings"] = DRAMTimings(**t)
        if isinstance(data.get("energy"), dict):
            data["energy"] = EnergyParams(**data["energy"])
        if isinstance(data.get("faults"), dict):
            data["faults"] = LinkFaultConfig(**data["faults"])
        return cls(**data)

    @classmethod
    def from_json(cls, source: Any) -> "HMCConfig":
        """Rebuild from a JSON string or file path."""
        import json
        from pathlib import Path

        text = str(source)
        if "{" not in text:  # a path, not inline JSON
            text = Path(text).read_text()
        return cls.from_dict(json.loads(text))
