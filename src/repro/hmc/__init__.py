"""Hybrid Memory Cube package model.

Assembles the substrates into the device of the paper's Figure 2: 32 vaults
(each with 16 banks and a vault controller hosting the memory-side
prefetcher), an internal crossbar, four full-duplex serial links, and the
host-side HMC controller that packetizes cache-line requests.
"""

from repro.hmc.config import HMCConfig
from repro.hmc.address import AddressMapping, DecodedAddress
from repro.hmc.device import HMCDevice
from repro.hmc.host import HostController

__all__ = [
    "HMCConfig",
    "AddressMapping",
    "DecodedAddress",
    "HMCDevice",
    "HostController",
]
