"""The assembled Hybrid Memory Cube.

``HMCDevice`` instantiates the 32 vault controllers (each with the chosen
prefetching scheme), the internal crossbar and the energy model, and exposes
the two entry points the host controller uses: deliver a request packet to a
vault, and receive completions back.  End-of-run aggregation (conflict rates,
prefetch accuracy, energy) happens here because only the device sees every
vault.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.schemes import make_prefetcher
from repro.dram.energy import EnergyModel
from repro.hmc.config import HMCConfig
from repro.interconnect.crossbar import Crossbar
from repro.request import MemoryRequest
from repro.sim.engine import Engine
from repro.vault.controller import VaultController

DeliverFn = Callable[[MemoryRequest, int], None]


class HMCDevice:
    """One HMC package: vaults + crossbar + energy accounting."""

    def __init__(
        self,
        config: HMCConfig,
        engine: Engine,
        scheme: str = "camps-mod",
        scheme_kwargs: Optional[Dict[str, Any]] = None,
        record_commands: bool = False,
    ) -> None:
        self.config = config
        self.engine = engine
        self.scheme = scheme
        self.crossbar = Crossbar(config.vaults, config.crossbar_latency)
        self.energy = EnergyModel(config.energy)
        self._deliver_fn: Optional[DeliverFn] = None
        self._xbar_latency = config.crossbar_latency
        kwargs = scheme_kwargs or {}
        self.vaults: List[VaultController] = [
            VaultController(
                vault_id=v,
                config=config,
                engine=engine,
                prefetcher=make_prefetcher(scheme, v, config, **kwargs),
                respond_fn=self._on_vault_response,
                record_commands=record_commands,
            )
            for v in range(config.vaults)
        ]
        self._finalized = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_deliver_fn(self, fn: DeliverFn) -> None:
        """Install the host-side completion path (set by HostController).

        The vault controllers are rewired to call ``fn`` directly, skipping
        the :meth:`_on_vault_response` pass-through frame on the hot path.
        The deliver fn receives the *bank-side* ready cycle; the response
        crossbar traversal is charged by the receiver (the host controller
        mirrors ``config.crossbar_latency`` for this).
        """
        self._deliver_fn = fn
        for vc in self.vaults:
            vc.respond_fn = fn

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def inject(self, req: MemoryRequest, at: int) -> None:
        """A request packet leaves the link's cube-side receiver at ``at``:
        route it through the crossbar to its vault controller.

        The crossbar traversal is inlined (``Crossbar.route`` holds the
        reference semantics); the host decode already bounds ``req.vault``.
        """
        xbar = self.crossbar
        vault = req.vault
        port_busy = xbar._port_busy
        start = port_busy[vault]
        if start > at:
            xbar.port_conflicts += 1
        else:
            start = at
        port_busy[vault] = start + xbar.port_cycle
        xbar.traversals += 1
        self.engine.call_at(start + xbar.latency, self.vaults[vault].receive, req)

    def _on_vault_response(self, req: MemoryRequest, ready: int) -> None:
        """A vault finished a request at ``ready``; hand it to the host path.
        (Vaults call the deliver fn directly once a host is attached - this
        stays as the pre-wiring default and the no-host error path.  The
        response crossbar traversal is charged by the deliver fn.)"""
        if self._deliver_fn is None:
            raise RuntimeError("HMCDevice has no host attached")
        self._deliver_fn(req, ready)

    # ------------------------------------------------------------------
    # End-of-run aggregation
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Warmup boundary: zero every measurement counter in the cube."""
        for vc in self.vaults:
            vc.reset_statistics()
        e = self.energy
        e.acts = e.pres = e.line_reads = e.line_writes = 0
        e.row_transfers = e.buffer_accesses = e.link_flits = e.refreshes = 0
        self.crossbar.traversals = 0
        self.crossbar.port_conflicts = 0

    def finalize(self) -> None:
        """Charge energy and flush buffer accuracy accounting.  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        for vc in self.vaults:
            vc.finalize()
            self.energy.charge_banks(vc.banks)
            if vc.buffer is not None:
                self.energy.charge_buffer_access(
                    vc.buffer.hits + vc.buffer.lines_inserted
                )
        self.energy.set_cycles(self.engine.now)

    # ------------------------------------------------------------------
    # Aggregated statistics
    # ------------------------------------------------------------------
    @property
    def demand_accesses(self) -> int:
        return sum(vc.demand_accesses for vc in self.vaults)

    @property
    def row_conflicts(self) -> int:
        return sum(vc.row_conflicts for vc in self.vaults)

    @property
    def buffer_hits(self) -> int:
        return sum(vc.stats.counter("buffer_hits").value for vc in self.vaults)

    def conflict_rate(self) -> float:
        """Row-buffer conflicts across all banks, per demand request absorbed
        by the cube (Figure 6's metric)."""
        total = self.demand_accesses + self.buffer_hits
        return self.row_conflicts / total if total else 0.0

    def prefetch_row_accuracy(self) -> float:
        """Fraction of prefetched rows referenced before eviction (Fig. 7).
        Only meaningful after :meth:`finalize`."""
        used = unused = 0
        for vc in self.vaults:
            if vc.buffer is not None:
                used += vc.buffer.rows_retired_used
                unused += vc.buffer.rows_retired_unused
        n = used + unused
        return used / n if n else 0.0

    def prefetch_line_accuracy(self) -> float:
        """Fraction of prefetched lines referenced (MMD's feedback metric)."""
        ins = used = 0
        for vc in self.vaults:
            if vc.buffer is not None:
                ins += vc.buffer.lines_inserted
                used += vc.buffer.lines_used
        return used / ins if ins else 0.0

    def prefetches_issued(self) -> int:
        return sum(vc.prefetcher.prefetches_issued for vc in self.vaults)

    def stats_summary(self) -> Dict[str, float]:
        """Flat dict of the headline device statistics."""
        return {
            "demand_accesses": float(self.demand_accesses),
            "row_conflicts": float(self.row_conflicts),
            "conflict_rate": self.conflict_rate(),
            "buffer_hits": float(self.buffer_hits),
            "prefetches_issued": float(self.prefetches_issued()),
            "row_accuracy": self.prefetch_row_accuracy(),
            "line_accuracy": self.prefetch_line_accuracy(),
            "energy_pj": self.energy.total_pj(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HMCDevice scheme={self.scheme} vaults={len(self.vaults)}>"
