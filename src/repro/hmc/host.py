"""Host-side HMC controller: address decode, packetization, link selection.

Sits on the processor die (paper Figure 2).  Every LLC miss or writeback
becomes a request packet: the controller decodes the cube coordinates once,
chooses a serial link (static vault-interleaved assignment, which balances
load because consecutive rows interleave across vaults), serializes the
packet, and injects it into the cube.  Completions arrive on the paired
response direction; the controller timestamps them, feeds the AMAT histogram
(Figure 8's input) and wakes the issuing core via the request callback.
"""

from __future__ import annotations

from heapq import heappush
from typing import List

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.interconnect.link import SerialLink
from repro.interconnect.packet import PacketKind, packet_bytes
from repro.obs.hooks import noop
from repro.request import MemoryRequest
from repro.sim.engine import Engine
from repro.sim.stats import StatGroup


class HostController:
    """The processor-side endpoint of the HMC serial links."""

    def __init__(
        self,
        config: HMCConfig,
        engine: Engine,
        device: HMCDevice,
        record_requests: bool = False,
    ) -> None:
        self.config = config
        self.engine = engine
        self.device = device
        self.record_requests = record_requests
        self.completed_requests = []  # populated only when recording
        self.mapping = AddressMapping(config)
        bpc = config.link_bytes_per_cycle
        self.links: List[SerialLink] = [
            SerialLink(i, bpc, config.serdes_latency, config.flit_bytes, config.faults)
            for i in range(config.links)
        ]
        device.set_deliver_fn(self._respond_from_cube)
        #: instrumentation site (repro.obs.hooks), rebound at wiring time
        self._tracer = None
        self._emit_link_tx = noop
        #: recycle delivered requests through the MemoryRequest pool; the
        #: System enables this only when it can prove single ownership
        #: (no request recording, no cache hierarchy holding MSHR refs)
        self.recycle_requests = False
        # packet sizes depend only on (kind, line_bytes, header_bytes):
        # resolve the four combinations once instead of per packet
        line = config.line_bytes
        hdr = config.request_header_bytes
        self._req_bytes = (
            packet_bytes(PacketKind.READ_REQUEST, line, hdr),
            packet_bytes(PacketKind.WRITE_REQUEST, line, hdr),
        )
        self._resp_bytes = (
            packet_bytes(PacketKind.READ_RESPONSE, line, hdr),
            packet_bytes(PacketKind.WRITE_RESPONSE, line, hdr),
        )
        # Decode constants mirrored out of AddressMapping: send() runs the
        # shift/mask arithmetic inline rather than building a DecodedAddress
        # per request (mapping.decode stays the public/validating API).
        m = self.mapping
        self._v_shift, self._v_mask = m.vault_shift, m.vault_mask
        self._b_shift, self._b_mask = m.bank_shift, m.bank_mask
        self._c_shift, self._c_mask = m.column_shift, m.column_mask
        self._r_shift = m.row_shift
        self._nlinks = len(self.links)
        self._energy = device.energy
        # Hot-path mirrors for the inlined crossbar traversal and the
        # response-side crossbar charge (device.inject / Crossbar.route hold
        # the reference semantics; vaults respond with bank-side ready
        # cycles, see HMCDevice.set_deliver_fn).
        self._xbar = device.crossbar
        self._vault_receive = [vc.receive for vc in device.vaults]
        self._resp_xbar = config.crossbar_latency
        self.stats = StatGroup("host")
        self._c_reads = self.stats.counter("reads_sent")
        self._c_writes = self.stats.counter("writes_sent")
        self._c_done = self.stats.counter("completions")
        # 64 bins x 32 cycles covers latencies up to ~2k cycles before overflow
        self.latency_hist = self.stats.histogram("mem_latency", nbins=64, bin_width=32)
        self.read_latency_hist = self.stats.histogram(
            "read_latency", nbins=64, bin_width=32
        )
        # send() context pack: every object here is bound once and mutated
        # only in place, so the tuple stays current; one attribute read + a
        # C-level unpack replaces the dozen attribute chains that used to
        # open every packetization.
        self._send_ctx = (
            engine,
            self._v_shift,
            self._v_mask,
            self._b_shift,
            self._b_mask,
            self._r_shift,
            self._c_shift,
            self._c_mask,
            self._req_bytes,
            self.links,
            self._nlinks,
            self._energy,
            self._xbar,
            self._vault_receive,
            self._c_reads,
            self._c_writes,
        )
        self._tx_ctx = (
            engine,
            self._resp_bytes,
            self.links,
            self._nlinks,
            self._energy,
            self._deliver,
        )
        self._deliver_ctx = (
            engine,
            self.latency_hist,
            self.read_latency_hist,
            self._c_done,
        )

    # ------------------------------------------------------------------
    # Instrumentation (see repro.obs.hooks)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._emit_link_tx = tracer.link_tx if tracer is not None else noop

    # ------------------------------------------------------------------
    # Request path (core -> cube)
    # ------------------------------------------------------------------
    def _link_for(self, vault: int) -> SerialLink:
        return self.links[vault % len(self.links)]

    def send(self, req: MemoryRequest) -> None:
        """Packetize and transmit one request at ``engine.now``."""
        (
            engine,
            v_shift,
            v_mask,
            b_shift,
            b_mask,
            r_shift,
            c_shift,
            c_mask,
            req_bytes,
            links,
            nlinks,
            energy,
            xbar,
            vault_receive,
            c_reads,
            c_writes,
        ) = self._send_ctx
        now = engine.now
        req.host_cycle = now
        addr = req.addr
        req.vault = vault = (addr >> v_shift) & v_mask
        req.bank = (addr >> b_shift) & b_mask
        req.row = addr >> r_shift
        req.column = (addr >> c_shift) & c_mask
        is_write = req.is_write
        nbytes = req_bytes[is_write]
        link = links[vault % nlinks]
        d = link.request
        # Fault-free serialization inlined (LinkDirection.send holds the
        # reference semantics and remains the retry/cache-miss slow path).
        cached = d._ser_cache.get(nbytes) if d.retry is None else None
        if cached is not None:
            busy = d.busy_until
            start = now if now > busy else busy
            ser, flits = cached
            d.busy_until = end = start + ser
            d.busy_cycles += ser
            d.packets += 1
            d.bytes_sent += nbytes
            d.flits_sent += flits
            arrival = end + d.serdes_latency
        else:
            arrival, flits = d.send(now, nbytes)
        emit = self._emit_link_tx
        if emit is not noop:
            emit(link.link_id, "req", nbytes, now, arrival)
        energy.link_flits += flits
        if is_write:
            c_writes.value += 1
        else:
            c_reads.value += 1
        # Crossbar traversal inlined the same way (see __init__ mirrors).
        port_busy = xbar._port_busy
        start = port_busy[vault]
        if start > arrival:
            xbar.port_conflicts += 1
        else:
            start = arrival
        port_busy[vault] = start + xbar.port_cycle
        xbar.traversals += 1
        # Engine.call_at inlined (the method stays the reference): the
        # arrival cycle is structurally >= now, so the past-check is free to
        # skip; seq draws from the engine counter, keeping order identical.
        engine._seq = seq = engine._seq + 1
        heappush(
            engine._heap,
            (start + xbar.latency, 0, seq, vault_receive[vault], (req,)),
        )
        engine._strong += 1

    # ------------------------------------------------------------------
    # Response path (cube -> core)
    # ------------------------------------------------------------------
    def _respond_from_cube(self, req: MemoryRequest, ready: int) -> None:
        # ``ready`` is the bank-side cycle; the response crossbar traversal
        # is charged here (see HMCDevice.set_deliver_fn).  Serialization must
        # be reserved when the data is actually ready - reserving at call
        # time would let far-future completions (e.g. in-flight prefetch
        # hits) block earlier responses on the link.
        engine = self.engine
        now = engine.now
        t = ready + self._resp_xbar
        # Engine.call_at inlined (clamped-to-now time can never be past).
        engine._seq = seq = engine._seq + 1
        heappush(
            engine._heap,
            (t if t > now else now, 0, seq, self._tx_response, (req,)),
        )
        engine._strong += 1

    def _tx_response(self, req: MemoryRequest) -> None:
        engine, resp_bytes, links, nlinks, energy, deliver = self._tx_ctx
        now = engine.now
        nbytes = resp_bytes[req.is_write]
        link = links[req.vault % nlinks]
        d = link.response
        # Fault-free serialization inlined; same shape as send().
        cached = d._ser_cache.get(nbytes) if d.retry is None else None
        if cached is not None:
            busy = d.busy_until
            start = now if now > busy else busy
            ser, flits = cached
            d.busy_until = end = start + ser
            d.busy_cycles += ser
            d.packets += 1
            d.bytes_sent += nbytes
            d.flits_sent += flits
            arrival = end + d.serdes_latency
        else:
            arrival, flits = d.send(now, nbytes)
        emit = self._emit_link_tx
        if emit is not noop:
            emit(link.link_id, "resp", nbytes, now, arrival)
        energy.link_flits += flits
        # Engine.call_at inlined (arrival is structurally >= now).
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (arrival, 0, seq, deliver, (req,)))
        engine._strong += 1

    def _deliver(self, req: MemoryRequest) -> None:
        engine, lat_hist, read_hist, c_done = self._deliver_ctx
        now = engine.now
        req.complete_cycle = now
        c_done.value += 1
        lat = now - req.issue_cycle
        # Histogram.add inlined for the per-delivery samples (Histogram.add
        # holds the reference semantics; identical operation order keeps the
        # Welford running moments bit-identical to the method path).
        h = lat_hist
        idx = lat // h.bin_width
        nb = h.nbins
        if idx >= nb:
            idx = nb - 1
            h._overflow += 1
        elif idx < 0:
            idx = 0
        h._counts[idx] += 1
        h._n = n = h._n + 1
        delta = lat - h._mean
        h._mean = mean = h._mean + delta / n
        h._m2 += delta * (lat - mean)
        if h._min is None or lat < h._min:
            h._min = float(lat)
        if h._max is None or lat > h._max:
            h._max = float(lat)
        if not req.is_write:
            h = read_hist
            idx = lat // h.bin_width
            nb = h.nbins
            if idx >= nb:
                idx = nb - 1
                h._overflow += 1
            elif idx < 0:
                idx = 0
            h._counts[idx] += 1
            h._n = n = h._n + 1
            delta = lat - h._mean
            h._mean = mean = h._mean + delta / n
            h._m2 += delta * (lat - mean)
            if h._min is None or lat < h._min:
                h._min = float(lat)
            if h._max is None or lat > h._max:
                h._max = float(lat)
        if self.record_requests:
            self.completed_requests.append(req)
        cb = req.callback
        if cb is not None:
            cb(req)
        if self.recycle_requests:
            # MemoryRequest.release inlined (the classmethod remains the
            # reference for non-hot callers).
            req.callback = None
            req.meta = None
            MemoryRequest._pool.append(req)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Warmup boundary: zero latency histograms and link activity.  The
        sent/completed counters are preserved (outstanding tracking)."""
        self.latency_hist.reset()
        self.read_latency_hist.reset()
        for link in self.links:
            link.reset_statistics()

    @property
    def outstanding(self) -> int:
        sent = self._c_reads.value + self._c_writes.value
        return sent - self._c_done.value

    def mean_memory_latency(self) -> float:
        """Mean round-trip latency of all completed requests (cycles)."""
        return self.latency_hist.mean

    def mean_read_latency(self) -> float:
        """Mean round-trip latency of completed reads (AMAT numerator)."""
        return self.read_latency_hist.mean

    @property
    def faults_enabled(self) -> bool:
        """True when any link direction carries a retry buffer."""
        return any(
            d.retry is not None
            for link in self.links
            for d in (link.request, link.response)
        )

    def link_fault_summary(self) -> dict:
        """Aggregated retry-buffer counters across all links.

        Empty dict when fault injection is not attached (the common case),
        so callers can splice it into reports without an enabled check.
        """
        per_link = {}
        totals: dict = {}
        for link in self.links:
            counters = link.fault_counters()
            if counters is None:
                continue
            per_link[f"link{link.link_id}"] = counters
            for key, value in counters.items():
                if key == "max_episode_replays":
                    totals[key] = max(totals.get(key, 0), value)
                else:
                    totals[key] = totals.get(key, 0) + value
        if not per_link:
            return {}
        totals["per_link"] = per_link
        return totals

    def link_utilization(self) -> float:
        """Average request+response serialization utilization across links."""
        cycles = self.engine.now
        if not cycles:
            return 0.0
        dirs = [d for l in self.links for d in (l.request, l.response)]
        return sum(d.utilization(cycles) for d in dirs) / len(dirs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostController links={len(self.links)} outstanding={self.outstanding}>"
