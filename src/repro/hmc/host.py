"""Host-side HMC controller: address decode, packetization, link selection.

Sits on the processor die (paper Figure 2).  Every LLC miss or writeback
becomes a request packet: the controller decodes the cube coordinates once,
chooses a serial link (static vault-interleaved assignment, which balances
load because consecutive rows interleave across vaults), serializes the
packet, and injects it into the cube.  Completions arrive on the paired
response direction; the controller timestamps them, feeds the AMAT histogram
(Figure 8's input) and wakes the issuing core via the request callback.
"""

from __future__ import annotations

from typing import List

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.interconnect.link import SerialLink
from repro.interconnect.packet import PacketKind, packet_bytes
from repro.request import MemoryRequest
from repro.sim.engine import Engine
from repro.sim.stats import StatGroup


class HostController:
    """The processor-side endpoint of the HMC serial links."""

    def __init__(
        self,
        config: HMCConfig,
        engine: Engine,
        device: HMCDevice,
        record_requests: bool = False,
    ) -> None:
        self.config = config
        self.engine = engine
        self.device = device
        self.record_requests = record_requests
        self.completed_requests = []  # populated only when recording
        self.mapping = AddressMapping(config)
        bpc = config.link_bytes_per_cycle
        self.links: List[SerialLink] = [
            SerialLink(i, bpc, config.serdes_latency, config.flit_bytes, config.faults)
            for i in range(config.links)
        ]
        device.set_deliver_fn(self._respond_from_cube)
        #: observability hook (repro.obs.Tracer); one None check per packet
        self.tracer = None
        self.stats = StatGroup("host")
        self._c_reads = self.stats.counter("reads_sent")
        self._c_writes = self.stats.counter("writes_sent")
        self._c_done = self.stats.counter("completions")
        # 64 bins x 32 cycles covers latencies up to ~2k cycles before overflow
        self.latency_hist = self.stats.histogram("mem_latency", nbins=64, bin_width=32)
        self.read_latency_hist = self.stats.histogram(
            "read_latency", nbins=64, bin_width=32
        )

    # ------------------------------------------------------------------
    # Request path (core -> cube)
    # ------------------------------------------------------------------
    def _link_for(self, vault: int) -> SerialLink:
        return self.links[vault % len(self.links)]

    def send(self, req: MemoryRequest) -> None:
        """Packetize and transmit one request at ``engine.now``."""
        now = self.engine.now
        req.host_cycle = now
        d = self.mapping.decode(req.addr)
        req.vault, req.bank, req.row, req.column = d.vault, d.bank, d.row, d.column
        kind = PacketKind.WRITE_REQUEST if req.is_write else PacketKind.READ_REQUEST
        nbytes = packet_bytes(kind, self.config.line_bytes, self.config.request_header_bytes)
        link = self._link_for(req.vault)
        arrival, flits = link.request.send(now, nbytes)
        if self.tracer is not None:
            self.tracer.link_tx(link.link_id, "req", nbytes, now, arrival)
        self.device.energy.charge_link_flits(flits)
        if req.is_write:
            self._c_writes.inc()
        else:
            self._c_reads.inc()
        self.device.inject(req, arrival)

    # ------------------------------------------------------------------
    # Response path (cube -> core)
    # ------------------------------------------------------------------
    def _respond_from_cube(self, req: MemoryRequest, ready: int) -> None:
        # Serialization must be reserved when the data is actually ready -
        # reserving at call time would let far-future completions (e.g.
        # in-flight prefetch hits) block earlier responses on the link.
        self.engine.schedule_at(max(ready, self.engine.now), self._tx_response, req)

    def _tx_response(self, req: MemoryRequest) -> None:
        kind = PacketKind.WRITE_RESPONSE if req.is_write else PacketKind.READ_RESPONSE
        nbytes = packet_bytes(kind, self.config.line_bytes, self.config.request_header_bytes)
        link = self._link_for(req.vault)
        arrival, flits = link.response.send(self.engine.now, nbytes)
        if self.tracer is not None:
            self.tracer.link_tx(link.link_id, "resp", nbytes, self.engine.now, arrival)
        self.device.energy.charge_link_flits(flits)
        self.engine.schedule_at(arrival, self._deliver, req)

    def _deliver(self, req: MemoryRequest) -> None:
        req.complete_cycle = self.engine.now
        self._c_done.inc()
        lat = req.latency
        self.latency_hist.add(lat)
        if not req.is_write:
            self.read_latency_hist.add(lat)
        if self.record_requests:
            self.completed_requests.append(req)
        if req.callback is not None:
            req.callback(req)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Warmup boundary: zero latency histograms and link activity.  The
        sent/completed counters are preserved (outstanding tracking)."""
        self.latency_hist.reset()
        self.read_latency_hist.reset()
        for link in self.links:
            for d in (link.request, link.response):
                d.reset_statistics()

    @property
    def outstanding(self) -> int:
        sent = self._c_reads.value + self._c_writes.value
        return sent - self._c_done.value

    def mean_memory_latency(self) -> float:
        """Mean round-trip latency of all completed requests (cycles)."""
        return self.latency_hist.mean

    def mean_read_latency(self) -> float:
        """Mean round-trip latency of completed reads (AMAT numerator)."""
        return self.read_latency_hist.mean

    @property
    def faults_enabled(self) -> bool:
        """True when any link direction carries a retry buffer."""
        return any(
            d.retry is not None
            for link in self.links
            for d in (link.request, link.response)
        )

    def link_fault_summary(self) -> dict:
        """Aggregated retry-buffer counters across all links.

        Empty dict when fault injection is not attached (the common case),
        so callers can splice it into reports without an enabled check.
        """
        per_link = {}
        totals: dict = {}
        for link in self.links:
            counters = link.fault_counters()
            if counters is None:
                continue
            per_link[f"link{link.link_id}"] = counters
            for key, value in counters.items():
                if key == "max_episode_replays":
                    totals[key] = max(totals.get(key, 0), value)
                else:
                    totals[key] = totals.get(key, 0) + value
        if not per_link:
            return {}
        totals["per_link"] = per_link
        return totals

    def link_utilization(self) -> float:
        """Average request+response serialization utilization across links."""
        cycles = self.engine.now
        if not cycles:
            return 0.0
        dirs = [d for l in self.links for d in (l.request, l.response)]
        return sum(d.utilization(cycles) for d in dirs) / len(dirs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostController links={len(self.links)} outstanding={self.outstanding}>"
