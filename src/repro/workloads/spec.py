"""SPEC CPU2006 benchmark profiles for the synthetic trace generators.

Each profile captures the memory-side character of one benchmark as used by
the paper's Table II mixes.  MPKI values follow the paper's classification
(HM: MPKI >= 20, LM: 1 <= MPKI < 20); locality parameters follow each
benchmark's well-documented behaviour (lbm sweeps ~19 lattice field arrays in
lockstep, GemsFDTD updates several field arrays per cell, mcf/astar/omnetpp
pointer-chase, h264ref works in a small hot set).

Two mixture weights select between the generator components in
:mod:`repro.workloads.synthetic`:

* ``w_stream`` - lockstep aliased multi-stream sweeps: ``streams``
  concurrent array streams that alias to the same bank at different rows,
  interleaved in ``burst``-line turns, consuming ``lines_per_visit`` lines
  per row.  This produces both high row utilization (the RUT's signal) and
  conflict-then-revisit behaviour (the CT's signal).
* ``w_random`` - uniform single-line references: prefetch-hostile traffic
  that punishes indiscriminate whole-row schemes like BASE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one SPEC CPU2006 benchmark."""

    name: str
    mpki: float  # LLC misses per kilo-instruction (paper's classifier)
    write_frac: float  # fraction of references that are writebacks/stores
    w_stream: float
    w_random: float
    w_hot: float  # persistently hot rows (hot program structures)
    streams: int  # concurrent aliased array streams
    burst: int  # lines per stream turn before switching streams
    lines_per_visit: int  # distinct lines consumed per row visit
    footprint_lines: int  # working set in cache lines
    vault_window: int = 6  # vaults a phase's traffic concentrates in
    hot_rows: int = 6  # persistently hot rows per core

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ValueError("write_frac must be within [0, 1]")
        if min(self.w_stream, self.w_random, self.w_hot) < 0:
            raise ValueError("mixture weights must be non-negative")
        if self.w_stream + self.w_random + self.w_hot <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.lines_per_visit < 1:
            raise ValueError("lines_per_visit must be >= 1")
        if self.footprint_lines < 1024:
            raise ValueError("footprint_lines must be >= 1024")
        if self.vault_window < 1:
            raise ValueError("vault_window must be >= 1")
        if self.hot_rows < 1:
            raise ValueError("hot_rows must be >= 1")

    @property
    def weights(self) -> Tuple[float, float, float]:
        total = self.w_stream + self.w_random + self.w_hot
        return (
            self.w_stream / total,
            self.w_random / total,
            self.w_hot / total,
        )

    @property
    def memory_intensity(self) -> str:
        """The paper's HM / LM classification."""
        return "HM" if self.mpki >= 20 else "LM"

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between references."""
        return max(0.0, 1000.0 / self.mpki - 1.0)


def _p(name, mpki, wf, ws, wr, wh, streams, burst, lpv, fp, vw=6, hot=6) -> BenchmarkProfile:
    return BenchmarkProfile(name, mpki, wf, ws, wr, wh, streams, burst, lpv, fp, vw, hot)


#: All benchmarks appearing in the paper's Table II mixes.
PROFILES: Dict[str, BenchmarkProfile] = {
    # ---- high memory intensity (MPKI >= 20) ----------------------------
    # bwaves: blast-wave CFD, a few wide unit-stride sweeps
    "bwaves": _p("bwaves", 26.0, 0.28, 0.80, 0.12, 0.08, 3, 3, 16, 1 << 19),
    # GemsFDTD: FDTD solver, many field arrays updated in lockstep
    "gems": _p("gems", 30.0, 0.30, 0.74, 0.16, 0.10, 5, 2, 14, 1 << 19),
    # gcc: compiler, hot IR structures plus pointer traffic
    "gcc": _p("gcc", 21.0, 0.22, 0.50, 0.30, 0.20, 3, 2, 8, 1 << 18, 6, 8),
    # lbm: lattice-Boltzmann, ~19 field arrays swept with heavy stores
    "lbm": _p("lbm", 33.0, 0.45, 0.84, 0.10, 0.06, 6, 3, 16, 1 << 19),
    # milc: lattice QCD, strided sweeps plus irregular gather
    "milc": _p("milc", 25.0, 0.25, 0.62, 0.28, 0.10, 4, 2, 10, 1 << 19),
    # sphinx3: speech recognition, model-matrix streaming
    "sphinx": _p("sphinx", 22.0, 0.15, 0.63, 0.22, 0.15, 2, 2, 12, 1 << 18, 6, 8),
    # omnetpp: discrete event simulation, pointer-heavy with hot queues
    "omnetpp": _p("omnetpp", 21.0, 0.30, 0.38, 0.40, 0.22, 4, 1, 5, 1 << 18, 6, 10),
    # mcf: single-depot vehicle scheduling, the classic pointer-chaser
    "mcf": _p("mcf", 40.0, 0.24, 0.30, 0.55, 0.15, 2, 1, 3, 1 << 19, 6, 8),
    # ---- low memory intensity (1 <= MPKI < 20) --------------------------
    # cactusADM: numerical relativity, stencil streaming
    "cactus": _p("cactus", 9.0, 0.32, 0.72, 0.18, 0.10, 4, 3, 16, 1 << 17),
    # bzip2: compression, block-local with bursty reuse
    "bzip2": _p("bzip2", 6.0, 0.28, 0.50, 0.32, 0.18, 2, 2, 7, 1 << 16, 6, 8),
    # astar: path-finding, irregular graph walks
    "astar": _p("astar", 4.0, 0.20, 0.32, 0.50, 0.18, 2, 1, 4, 1 << 16, 6, 8),
    # wrf: weather model, stencil streaming
    "wrf": _p("wrf", 9.5, 0.30, 0.70, 0.20, 0.10, 4, 2, 14, 1 << 17),
    # tonto: quantum chemistry, small working set, mild streaming
    "tonto": _p("tonto", 3.0, 0.22, 0.50, 0.34, 0.16, 2, 2, 7, 1 << 15),
    # zeusmp: astrophysical CFD, lockstep field sweeps
    "zeusmp": _p("zeusmp", 11.0, 0.30, 0.70, 0.20, 0.10, 3, 2, 14, 1 << 17),
    # h264ref: video encoder, small hot working set
    "h264ref": _p("h264ref", 2.0, 0.25, 0.50, 0.30, 0.20, 2, 2, 8, 1 << 15, 6, 8),
    # ---- remaining SPEC CPU2006 benchmarks (not in the paper's Table II
    # mixes; provided so custom mixes can draw on the full suite) ---------
    # libquantum: quantum simulation, the classic pure stream
    "libquantum": _p("libquantum", 28.0, 0.22, 0.86, 0.08, 0.06, 1, 4, 16, 1 << 19),
    # soplex: LP solver, sparse matrix sweeps with irregular columns
    "soplex": _p("soplex", 24.0, 0.20, 0.50, 0.38, 0.12, 3, 2, 8, 1 << 18),
    # leslie3d: CFD, lockstep field sweeps
    "leslie3d": _p("leslie3d", 19.0, 0.30, 0.72, 0.20, 0.08, 4, 3, 14, 1 << 18),
    # xalancbmk: XML transformation, pointer-heavy with hot DOM nodes
    "xalancbmk": _p("xalancbmk", 12.0, 0.25, 0.32, 0.46, 0.22, 2, 1, 4, 1 << 17, 6, 10),
    # perlbench: interpreter, small hot set, light misses
    "perlbench": _p("perlbench", 1.5, 0.28, 0.42, 0.36, 0.22, 2, 2, 6, 1 << 15, 6, 10),
    # gobmk: game tree search, branchy with small working set
    "gobmk": _p("gobmk", 1.2, 0.22, 0.38, 0.44, 0.18, 2, 1, 5, 1 << 15, 6, 8),
    # hmmer: profile HMM search, tight hot loops
    "hmmer": _p("hmmer", 1.0, 0.20, 0.52, 0.30, 0.18, 2, 2, 8, 1 << 15),
    # sjeng: chess search, pointer-ish small footprint
    "sjeng": _p("sjeng", 1.1, 0.22, 0.32, 0.48, 0.20, 2, 1, 4, 1 << 15, 6, 8),
    # namd: molecular dynamics, compute bound with mild streaming
    "namd": _p("namd", 1.4, 0.25, 0.58, 0.28, 0.14, 3, 2, 10, 1 << 16),
    # dealII: FEM, moderate streaming over meshes
    "dealII": _p("dealII", 6.5, 0.28, 0.58, 0.28, 0.14, 3, 2, 10, 1 << 16),
    # gromacs: molecular dynamics, neighbour lists plus streams
    "gromacs": _p("gromacs", 2.5, 0.26, 0.52, 0.33, 0.15, 3, 2, 9, 1 << 16),
    # calculix: structural FEM, solver sweeps
    "calculix": _p("calculix", 3.5, 0.27, 0.56, 0.28, 0.16, 3, 2, 10, 1 << 16),
    # povray: ray tracing, tiny working set
    "povray": _p("povray", 0.8, 0.20, 0.42, 0.40, 0.18, 2, 1, 5, 1 << 14, 6, 8),
    # gamess: quantum chemistry, small hot matrices
    "gamess": _p("gamess", 0.9, 0.24, 0.48, 0.34, 0.18, 2, 2, 7, 1 << 14),
}


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; available: {', '.join(sorted(PROFILES))}"
        ) from None
