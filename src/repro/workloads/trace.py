"""Memory trace container and statistics.

A :class:`Trace` is three parallel NumPy arrays: instruction gaps between
memory references, byte addresses, and write flags.  Traces can round-trip
through ``.npz`` files so expensive generations are cacheable, and
:func:`trace_stats` summarizes the memory-side character (MPKI, row reuse,
row utilization) that the synthetic generators are calibrated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig


@dataclass
class Trace:
    """One core's memory reference stream.

    ``gaps[i]`` is the number of non-memory instructions executed before
    reference ``i``; the implied instruction count is
    ``gaps.sum() + len(gaps)`` (each reference is itself one instruction).
    """

    gaps: np.ndarray
    addrs: np.ndarray
    writes: np.ndarray
    name: str = "trace"
    meta: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.gaps = np.asarray(self.gaps, dtype=np.int64)
        self.addrs = np.asarray(self.addrs, dtype=np.int64)
        self.writes = np.asarray(self.writes, dtype=bool)
        if not (len(self.gaps) == len(self.addrs) == len(self.writes)):
            raise ValueError("trace arrays must have equal length")
        if len(self.gaps) and self.gaps.min() < 0:
            raise ValueError("gaps must be non-negative")
        if len(self.addrs) and self.addrs.min() < 0:
            raise ValueError("addresses must be non-negative")

    def __len__(self) -> int:
        return len(self.gaps)

    @property
    def instructions(self) -> int:
        """Total instructions implied by the trace."""
        return int(self.gaps.sum()) + len(self.gaps)

    @property
    def mpki(self) -> float:
        """Memory references per kilo-instruction."""
        n = self.instructions
        return 1000.0 * len(self) / n if n else 0.0

    @property
    def write_fraction(self) -> float:
        return float(self.writes.mean()) if len(self) else 0.0

    def head(self, n: int) -> "Trace":
        """First ``n`` references (for quick tests)."""
        return Trace(
            self.gaps[:n], self.addrs[:n], self.writes[:n], self.name, dict(self.meta)
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        np.savez_compressed(
            Path(path),
            gaps=self.gaps,
            addrs=self.addrs,
            writes=self.writes,
            name=np.array(self.name),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        with np.load(Path(path)) as data:
            return cls(
                gaps=data["gaps"],
                addrs=data["addrs"],
                writes=data["writes"],
                name=str(data["name"]),
            )

    def save_text(self, path: Union[str, Path]) -> None:
        """Write the interchange text format: one reference per line,
        ``<gap> <hex address> <R|W>``, ``#`` comments allowed."""
        with Path(path).open("w") as fh:
            fh.write(f"# trace {self.name}: gap addr R|W\n")
            for g, a, w in zip(self.gaps, self.addrs, self.writes):
                fh.write(f"{g} 0x{a:x} {'W' if w else 'R'}\n")

    @classmethod
    def load_text(cls, path: Union[str, Path], name: str = "text-trace") -> "Trace":
        """Read the interchange text format (tools like DRAM trace dumpers
        emit this shape; see :meth:`save_text`)."""
        gaps, addrs, writes = [], [], []
        with Path(path).open() as fh:
            for lineno, raw in enumerate(fh, 1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 3 or parts[2].upper() not in ("R", "W"):
                    raise ValueError(
                        f"{path}:{lineno}: expected '<gap> <addr> <R|W>', "
                        f"got {raw.rstrip()!r}"
                    )
                gaps.append(int(parts[0]))
                addrs.append(int(parts[1], 0))
                writes.append(parts[2].upper() == "W")
        if not gaps:
            raise ValueError(f"{path}: empty trace")
        return cls(np.array(gaps), np.array(addrs), np.array(writes), name=name)

    def __repr__(self) -> str:
        return f"<Trace {self.name} n={len(self)} mpki={self.mpki:.1f}>"


def trace_stats(
    trace: Trace, config: Optional[HMCConfig] = None
) -> Dict[str, float]:
    """Memory-side character of a trace (vectorized).

    Returns MPKI, write fraction, footprint, distinct-row count, mean
    distinct lines touched per row (row utilization - the RUT's signal), and
    the fraction of successive same-bank references that switch rows (a
    proxy for row-buffer conflict propensity - the CT's signal).
    """
    cfg = config or HMCConfig()
    m = AddressMapping(cfg)
    if len(trace) == 0:
        raise ValueError("cannot summarize an empty trace")
    vault, bank, row, column = m.decode_many(trace.addrs)
    # global row identity: (vault, bank, row) packed into one integer
    bank_id = vault * cfg.banks_per_vault + bank
    row_id = bank_id.astype(np.int64) * (int(row.max()) + 1) + row
    distinct_rows = len(np.unique(row_id))
    # distinct lines per row
    line_id = row_id * cfg.lines_per_row + column
    distinct_lines = len(np.unique(line_id))
    util_per_row = distinct_lines / distinct_rows

    # conflict propensity: per bank, fraction of consecutive accesses that
    # change row (sort by bank, stable, then compare neighbours)
    order = np.argsort(bank_id, kind="stable")
    b_sorted = bank_id[order]
    r_sorted = row_id[order]
    same_bank = b_sorted[1:] == b_sorted[:-1]
    switches = (r_sorted[1:] != r_sorted[:-1]) & same_bank
    n_same = int(same_bank.sum())
    row_switch_rate = float(switches.sum()) / n_same if n_same else 0.0

    return {
        "refs": float(len(trace)),
        "instructions": float(trace.instructions),
        "mpki": trace.mpki,
        "write_fraction": trace.write_fraction,
        "footprint_bytes": float(distinct_lines * cfg.line_bytes),
        "distinct_rows": float(distinct_rows),
        "lines_per_row": util_per_row,
        "row_switch_rate": row_switch_rate,
    }
