"""Synthetic SPEC-like memory trace generation.

A trace is a concatenation of *segments* from two component generators,
mixed by the benchmark profile's weights:

``stream`` - lockstep aliased multi-stream walk
    Real SPEC loops sweep several arrays at once (lbm touches 19 fields per
    lattice site; GemsFDTD updates multiple field arrays in lockstep).
    Contiguously allocated arrays accessed at the same index alias to the
    *same bank* at *different rows*, so the access stream interleaves short
    bursts from ``streams`` different rows of one bank.  Every burst switch
    is a row-buffer conflict, and each row is revisited turn after turn until
    its ``lines_per_visit`` lines are consumed - precisely the
    conflict-then-revisit pattern CAMPS's Conflict Table is built to catch,
    and the high-row-utilization pattern its RUT threshold is built to
    catch.  With ``streams=1`` this degenerates to a pure unit-stride sweep.

``random`` - uniform single-line references
    Pointer chasing (mcf, astar, omnetpp's event lists).  Rows are touched
    once, so whole-row prefetching of this traffic (as BASE does
    unconditionally) wastes internal bandwidth and thrashes the 16-entry
    prefetch buffer, evicting the useful stream rows.

All randomness flows from one ``numpy.random.Generator`` seeded explicitly,
so traces are reproducible bit-for-bit; bulk arrays (gaps, write flags) are
drawn vectorized.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.workloads.spec import BenchmarkProfile, profile as lookup_profile
from repro.workloads.trace import Trace


class TraceGenerator:
    """Generates one core's reference stream from a benchmark profile."""

    def __init__(
        self,
        prof: Union[str, BenchmarkProfile],
        config: Optional[HMCConfig] = None,
        seed: int = 0,
        core_id: int = 0,
    ) -> None:
        self.profile = lookup_profile(prof) if isinstance(prof, str) else prof
        self.config = config or HMCConfig()
        self.mapping = AddressMapping(self.config)
        self.rng = np.random.default_rng(seed)
        self.core_id = core_id

        cfg = self.config
        # One "row stripe" = one row id across every (vault, bank):
        # vaults * banks * row_bytes of address space.
        self._stripe_lines = cfg.vaults * cfg.banks_per_vault * cfg.lines_per_row
        self.region_rows = max(
            2 * self.profile.streams + 2,
            self.profile.footprint_lines // self._stripe_lines,
        )
        self.row_base = core_id * self.region_rows  # private rows, shared banks

        # Phase locality: a program phase's pages concentrate in a window of
        # vaults (page-granular hot set), which is what creates realistic
        # per-vault queue and prefetch-buffer pressure with only 8 cores.
        self.window = min(self.profile.vault_window, cfg.vaults)
        self._window_base = int(self.rng.integers(0, cfg.vaults))
        # walk position: which (vault, bank, base row) the streams are at
        self._win_idx = 0
        self._pos_bank = int(self.rng.integers(0, cfg.banks_per_vault))
        self._pos_row = 0
        # per-stream column cursors within the current row visit
        self._cols = [0] * self.profile.streams
        # Persistently hot rows (hot program structures): fixed for the
        # trace's whole lifetime, revisited a few lines at a time.
        self._hot = [
            (
                int(self.rng.integers(0, cfg.vaults)),
                int(self.rng.integers(0, cfg.banks_per_vault)),
                self.row_base + int(self.rng.integers(0, self.region_rows)),
            )
            for _ in range(self.profile.hot_rows)
        ]

    # ------------------------------------------------------------------
    # Walk-position bookkeeping
    # ------------------------------------------------------------------
    @property
    def _pos_vault(self) -> int:
        return (self._window_base + self._win_idx) % self.config.vaults

    def _advance_position(self) -> None:
        cfg = self.config
        self._win_idx += 1
        if self._win_idx >= self.window:
            self._win_idx = 0
            self._pos_bank += 1
            if self._pos_bank >= cfg.banks_per_vault:
                self._pos_bank = 0
                self._pos_row = (self._pos_row + 1) % self.region_rows

    def _stream_row(self, j: int) -> int:
        """Row id of stream ``j`` at the current walk position.  Streams are
        spread evenly through the region so they always hit distinct rows of
        the same bank (contiguous arrays aliasing at equal index)."""
        spread = max(1, self.region_rows // self.profile.streams)
        return self.row_base + (self._pos_row + j * spread) % self.region_rows

    # ------------------------------------------------------------------
    # Component generators
    # ------------------------------------------------------------------
    def _segment_stream(self) -> List[int]:
        """One walk position: every stream consumes ``lines_per_visit``
        lines of its row in interleaved bursts."""
        cfg = self.config
        prof = self.profile
        encode = self.mapping.encode
        # Occasional locality break (loop boundary / new program phase):
        # the hot vault window moves.
        if self.rng.random() < 0.04:
            self._window_base = int(self.rng.integers(0, cfg.vaults))
            self._win_idx = 0
            self._pos_bank = int(self.rng.integers(0, cfg.banks_per_vault))
            self._pos_row = int(self.rng.integers(0, self.region_rows))
        vault, bank = self._pos_vault, self._pos_bank
        rows = [self._stream_row(j) for j in range(prof.streams)]
        if prof.lines_per_visit >= cfg.lines_per_row:
            # Full-row sweeps consume rows deterministically (a unit-stride
            # array pass touches every line of every row it crosses).
            lpv = cfg.lines_per_row
        else:
            lpv = int(
                np.clip(
                    self.rng.normal(prof.lines_per_visit, 1.5), 1, cfg.lines_per_row
                )
            )
        out: List[int] = []
        turns = -(-lpv // prof.burst)  # ceil
        for turn in range(turns):
            for j, row in enumerate(rows):
                base = self._cols[j]
                for l in range(prof.burst):
                    consumed = turn * prof.burst + l
                    if consumed >= lpv:
                        break
                    col = (base + consumed) % cfg.lines_per_row
                    out.append(encode(vault, bank, row, col))
        # Column phase drifts between visits (arrays are not row-aligned).
        for j in range(prof.streams):
            self._cols[j] = (self._cols[j] + lpv) % cfg.lines_per_row
        self._advance_position()
        return out

    def _segment_random(self) -> List[int]:
        """Single-line references: mostly within the phase's hot vault
        window (pointer structures live in the same pages), with a spray of
        truly global references."""
        cfg = self.config
        n = int(self.rng.integers(16, 49))
        rows = self.rng.integers(0, self.region_rows, size=n)
        in_window = self.rng.random(n) < 0.7
        offsets = self.rng.integers(0, self.window, size=n)
        anywhere = self.rng.integers(0, cfg.vaults, size=n)
        vaults = np.where(
            in_window, (self._window_base + offsets) % cfg.vaults, anywhere
        )
        banks = self.rng.integers(0, cfg.banks_per_vault, size=n)
        cols = self.rng.integers(0, cfg.lines_per_row, size=n)
        return [
            self.mapping.encode(int(v), int(b), self.row_base + int(r), int(c))
            for v, b, r, c in zip(vaults, banks, rows, cols)
        ]

    def _segment_hot(self) -> List[int]:
        """Revisit a few persistently hot rows, a handful of lines each.

        These rows accumulate utilization across the whole run - the traffic
        class for which CAMPS-MOD's utilization-aware replacement retains
        rows that plain LRU loses under pollution floods."""
        cfg = self.config
        out: List[int] = []
        k = int(self.rng.integers(1, min(4, len(self._hot) + 1)))
        picks = self.rng.choice(len(self._hot), size=k, replace=False)
        for i in picks:
            vault, bank, row = self._hot[int(i)]
            start = int(self.rng.integers(0, cfg.lines_per_row))
            n = int(self.rng.integers(2, 5))
            for step in range(n):
                col = (start + step) % cfg.lines_per_row
                out.append(self.mapping.encode(vault, bank, row, col))
        return out

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def generate(self, n_refs: int) -> Trace:
        """Produce a trace of exactly ``n_refs`` references."""
        if n_refs < 1:
            raise ValueError("n_refs must be >= 1")
        prof = self.profile
        probs = np.array(prof.weights)
        segments = (self._segment_stream, self._segment_random, self._segment_hot)

        addrs: List[int] = []
        while len(addrs) < n_refs:
            which = int(self.rng.choice(3, p=probs))
            addrs.extend(segments[which]())
        addr_arr = np.array(addrs[:n_refs], dtype=np.int64)

        # Instruction gaps: geometric with the profile's mean (so the trace's
        # MPKI matches the profile), writes: Bernoulli.
        mean_gap = prof.mean_gap
        p = 1.0 / (mean_gap + 1.0)
        gaps = self.rng.geometric(p, size=n_refs).astype(np.int64) - 1
        writes = self.rng.random(n_refs) < prof.write_frac

        return Trace(
            gaps=gaps,
            addrs=addr_arr,
            writes=writes,
            name=f"{prof.name}.c{self.core_id}",
            meta={"mpki_target": prof.mpki, "seed_core": float(self.core_id)},
        )


def generate_trace(
    prof: Union[str, BenchmarkProfile],
    n_refs: int,
    seed: int = 0,
    config: Optional[HMCConfig] = None,
    core_id: int = 0,
) -> Trace:
    """One-call convenience wrapper around :class:`TraceGenerator`."""
    return TraceGenerator(prof, config=config, seed=seed, core_id=core_id).generate(
        n_refs
    )
