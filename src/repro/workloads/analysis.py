"""Standalone row-buffer analysis of a trace (no full simulation needed).

Replays a trace against functional per-bank row-buffer state - no timing, no
queues - and reports the hit/empty/conflict distribution, per-row utilization
and conflict-row revisit statistics.  This answers "what would CAMPS see in
this workload?" in milliseconds, which is how the synthetic generators were
calibrated and how a user can sanity-check their own traces before a full
run.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class RowBufferProfile:
    """Functional row-buffer behaviour of one trace."""

    accesses: int
    hits: int
    empties: int
    conflicts: int
    distinct_rows: int
    #: rows conflicted out and later re-activated (the CT's catchable set)
    conflict_revisit_rows: int
    #: distribution of distinct lines touched per row visit (RUT's signal)
    visit_utilization: Dict[int, int]

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.accesses if self.accesses else 0.0

    @property
    def mean_visit_utilization(self) -> float:
        total = sum(k * v for k, v in self.visit_utilization.items())
        visits = sum(self.visit_utilization.values())
        return total / visits if visits else 0.0

    def rut_trigger_fraction(self, threshold: int = 4) -> float:
        """Fraction of row visits that would reach CAMPS's RUT threshold."""
        visits = sum(self.visit_utilization.values())
        if not visits:
            return 0.0
        eligible = sum(v for k, v in self.visit_utilization.items() if k >= threshold)
        return eligible / visits

    def summary(self) -> str:
        return (
            f"accesses={self.accesses} hit={self.hit_rate:.1%} "
            f"conflict={self.conflict_rate:.1%} rows={self.distinct_rows} "
            f"visit_util={self.mean_visit_utilization:.1f} "
            f"rut4={self.rut_trigger_fraction():.1%} "
            f"ct_catchable_rows={self.conflict_revisit_rows}"
        )


def analyze_row_buffer(
    trace: Trace, config: Optional[HMCConfig] = None
) -> RowBufferProfile:
    """Replay the trace against open-page row buffers (one per bank)."""
    cfg = config or HMCConfig()
    m = AddressMapping(cfg)
    vault, bank, row, column = m.decode_many(trace.addrs)
    bank_id = vault * cfg.banks_per_vault + bank

    open_row: Dict[int, int] = {}
    hits = empties = conflicts = 0
    # per (bank, row): the distinct-line mask of the current visit
    visit_mask: Dict[int, int] = {}
    visit_utilization: Counter = Counter()
    conflicted_rows: set = set()
    revisited_conflicted: set = set()
    seen_rows: set = set()

    for i in range(len(trace)):
        b = int(bank_id[i])
        r = int(row[i])
        c = int(column[i])
        seen_rows.add((b, r))
        prev = open_row.get(b)
        if prev is None:
            empties += 1
            if (b, r) in conflicted_rows:
                revisited_conflicted.add((b, r))
            visit_mask[b] = 0
        elif prev == r:
            hits += 1
        else:
            conflicts += 1
            conflicted_rows.add((b, prev))
            if (b, r) in conflicted_rows:
                revisited_conflicted.add((b, r))
            visit_utilization[bin(visit_mask.get(b, 0)).count("1")] += 1
            visit_mask[b] = 0
        open_row[b] = r
        visit_mask[b] = visit_mask.get(b, 0) | (1 << c)

    for mask in visit_mask.values():
        if mask:
            visit_utilization[bin(mask).count("1")] += 1

    return RowBufferProfile(
        accesses=len(trace),
        hits=hits,
        empties=empties,
        conflicts=conflicts,
        distinct_rows=len(seen_rows),
        conflict_revisit_rows=len(revisited_conflicted),
        visit_utilization=dict(visit_utilization),
    )


def analyze_mix(traces, config: Optional[HMCConfig] = None) -> RowBufferProfile:
    """Row-buffer profile of several cores' traces interleaved round-robin
    (approximates the multiprogrammed interleaving the banks actually see)."""
    import numpy as np

    if not traces:
        raise ValueError("need at least one trace")
    # round-robin merge by index
    n = max(len(t) for t in traces)
    gaps, addrs, writes = [], [], []
    for i in range(n):
        for t in traces:
            if i < len(t):
                gaps.append(int(t.gaps[i]))
                addrs.append(int(t.addrs[i]))
                writes.append(bool(t.writes[i]))
    merged = Trace(np.array(gaps), np.array(addrs), np.array(writes), name="merged")
    return analyze_row_buffer(merged, config)
