"""The paper's Table II: twelve eight-core multiprogrammed workload mixes.

Four high-memory-intensity mixes (HM1-4, all constituents MPKI >= 20), four
low-intensity mixes (LM1-4), and four mixed sets (MX1-4) drawing four
benchmarks from each class.  Each mix lists exactly eight slots (one per
core); the paper repeats each benchmark twice per mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hmc.config import HMCConfig
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import TraceGenerator
from repro.workloads.trace import Trace

#: Table II, verbatim.
MIXES: Dict[str, List[str]] = {
    "HM1": ["bwaves", "gems", "gcc", "lbm", "bwaves", "gcc", "lbm", "gems"],
    "HM2": ["milc", "gems", "sphinx", "omnetpp", "sphinx", "milc", "omnetpp", "gems"],
    "HM3": ["gcc", "mcf", "lbm", "milc", "mcf", "gcc", "milc", "lbm"],
    "HM4": ["sphinx", "gcc", "lbm", "bwaves", "sphinx", "bwaves", "lbm", "gcc"],
    "LM1": ["cactus", "bzip2", "astar", "wrf", "wrf", "bzip2", "cactus", "astar"],
    "LM2": ["tonto", "zeusmp", "h264ref", "astar", "zeusmp", "h264ref", "astar", "tonto"],
    "LM3": ["bzip2", "zeusmp", "cactus", "tonto", "cactus", "zeusmp", "bzip2", "tonto"],
    "LM4": ["astar", "tonto", "bzip2", "h264ref", "tonto", "astar", "bzip2", "h264ref"],
    "MX1": ["bwaves", "gcc", "cactus", "wrf", "cactus", "gcc", "wrf", "bwaves"],
    "MX2": ["gems", "sphinx", "tonto", "h264ref", "sphinx", "gems", "h264ref", "tonto"],
    "MX3": ["milc", "lbm", "wrf", "bzip2", "lbm", "bzip2", "milc", "wrf"],
    "MX4": ["gcc", "bwaves", "bzip2", "astar", "bwaves", "gcc", "bzip2", "astar"],
}

HM_MIXES = ["HM1", "HM2", "HM3", "HM4"]
LM_MIXES = ["LM1", "LM2", "LM3", "LM4"]
MX_MIXES = ["MX1", "MX2", "MX3", "MX4"]

# sanity of the table itself (import-time: cheap, catches edits)
for _name, _benches in MIXES.items():
    assert len(_benches) == 8, f"{_name} must have 8 slots"
    for _b in _benches:
        assert _b in PROFILES, f"{_name} references unknown benchmark {_b}"


def mix_names() -> List[str]:
    """All twelve mix names in the paper's plot order."""
    return HM_MIXES + LM_MIXES + MX_MIXES


def mix_category(name: str) -> str:
    """HM / LM / MX category of a mix."""
    if name not in MIXES:
        raise ValueError(f"unknown mix {name!r}")
    return name[:2]


def mix(
    name: str,
    refs_per_core: int,
    seed: int = 0,
    config: Optional[HMCConfig] = None,
) -> List[Trace]:
    """Generate the eight per-core traces of one Table II mix.

    Core ``i`` runs the mix's ``i``-th benchmark with a per-core RNG stream
    derived from ``seed`` - same seed, same traces, every time.
    """
    if name not in MIXES:
        raise ValueError(f"unknown mix {name!r}; available: {', '.join(MIXES)}")
    # A deterministic (non-salted) mix fingerprint: str.__hash__ is salted
    # per interpreter run and would break trace reproducibility.
    mix_id = sum(ord(c) * 31**i for i, c in enumerate(name)) % 7919
    traces = []
    for core_id, bench in enumerate(MIXES[name]):
        gen = TraceGenerator(
            bench,
            config=config,
            seed=seed * 1009 + core_id * 131 + mix_id,
            core_id=core_id,
        )
        traces.append(gen.generate(refs_per_core))
    return traces
