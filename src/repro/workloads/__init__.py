"""Workload synthesis: SPEC-CPU2006-like memory traces and the Table II mixes.

The paper drives gem5 with SPEC CPU2006 binaries; those binaries and their
traces are not redistributable, so this package synthesizes post-LLC memory
reference streams whose *memory-side* statistics match each benchmark's
published character: misses-per-kilo-instruction class (the paper's HM/LM
split at MPKI 20 and 1), spatial locality within DRAM rows, row-buffer
conflict propensity, and write fraction.  Those are exactly the properties
CAMPS's mechanisms (RUT utilization threshold, CT conflict detection) key
off, so the substitution preserves the comparison the paper makes.
"""

from repro.workloads.trace import Trace, trace_stats
from repro.workloads.spec import BenchmarkProfile, PROFILES, profile
from repro.workloads.synthetic import TraceGenerator, generate_trace
from repro.workloads.mixes import MIXES, HM_MIXES, LM_MIXES, MX_MIXES, mix, mix_names
from repro.workloads.multistream import (
    MultiStreamSpec,
    StreamSpec,
    build_stream_traces,
)
from repro.workloads.analysis import RowBufferProfile, analyze_mix, analyze_row_buffer

__all__ = [
    "Trace",
    "trace_stats",
    "BenchmarkProfile",
    "PROFILES",
    "profile",
    "TraceGenerator",
    "generate_trace",
    "MIXES",
    "HM_MIXES",
    "LM_MIXES",
    "MX_MIXES",
    "mix",
    "mix_names",
    "MultiStreamSpec",
    "StreamSpec",
    "build_stream_traces",
    "RowBufferProfile",
    "analyze_mix",
    "analyze_row_buffer",
]
