"""Multi-stream workload specs for multi-cube fabrics.

A fabric serves N *independent* request streams - each one a full Table II
eight-core mix with its own RNG stream - the ROADMAP's "one simulated memory
system serving many independent users" scaling axis.  A
:class:`MultiStreamSpec` names the streams and how their address spaces map
onto cubes:

``home``
    Locality-aware placement (the Yoon et al. row-buffer-locality argument):
    each stream's single-cube address space is spliced into its home cube's
    slice via :meth:`~repro.fabric.address.FabricAddressMapping.
    relocate_home`, so a stream's rows - and its row-buffer locality - stay
    inside one cube and inter-cube traffic comes only from non-home streams.
``interleave``
    Addresses are used as generated: the cube-select bits fall where the
    generator's row bits land, spreading every stream's rows across all
    cubes (maximum fabric load, no locality).

Generation is fully deterministic: stream ``i`` of
:meth:`MultiStreamSpec.per_cube` seeds its mix with ``seed + i``, so the
same spec always produces byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple, Union

from repro.workloads.mixes import mix
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.address import FabricAddressMapping
    from repro.fabric.topology import FabricConfig

PLACEMENTS = ("home", "interleave")


@dataclass(frozen=True)
class StreamSpec:
    """One independent request stream: a Table II mix with its own seed and
    home cube."""

    mix: str
    seed: int = 0
    home_cube: int = 0


@dataclass(frozen=True)
class MultiStreamSpec:
    """N independent streams plus their cube-placement policy."""

    streams: Tuple[StreamSpec, ...] = field(default_factory=tuple)
    refs_per_core: int = 4000
    placement: str = "home"

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError("need at least one stream")
        if self.refs_per_core < 1:
            raise ValueError("refs_per_core must be >= 1")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"available: {', '.join(PLACEMENTS)}"
            )

    @classmethod
    def per_cube(
        cls,
        mix_name: str,
        cubes: int,
        refs_per_core: int,
        seed: int = 0,
        placement: str = "home",
    ) -> "MultiStreamSpec":
        """One stream per cube, stream ``i`` homed at cube ``i``.

        With ``cubes == 1`` this is exactly one plain mix - the degenerate
        spec the single-cube parity tests run.
        """
        if cubes < 1:
            raise ValueError(f"cubes must be >= 1, got {cubes}")
        return cls(
            streams=tuple(
                StreamSpec(mix=mix_name, seed=seed + i, home_cube=i)
                for i in range(cubes)
            ),
            refs_per_core=refs_per_core,
            placement=placement,
        )

    @property
    def cores(self) -> int:
        """Total simulated cores (eight per stream)."""
        return 8 * len(self.streams)

    def describe(self) -> str:
        names = ",".join(f"{s.mix}@q{s.home_cube}" for s in self.streams)
        return f"[{names}] x{self.refs_per_core} ({self.placement})"


def build_stream_traces(
    spec: MultiStreamSpec,
    fabric: Union["FabricConfig", "FabricAddressMapping"],
) -> List[Trace]:
    """Generate every stream's per-core traces, placed onto the fabric.

    Returns a flat list (stream-major: stream 0's eight cores first) ready
    for :class:`~repro.fabric.system.FabricSystem`.  Streams are generated
    against the single-cube config - the generators are calibrated there -
    and relocated afterwards, so a stream's intra-cube footprint is
    identical regardless of which cube it lands on.
    """
    # Imported here, not at module top: repro.system -> repro.workloads ->
    # this module -> repro.fabric -> repro.fabric.system -> repro.system
    # would otherwise be a cycle.
    from repro.fabric.address import FabricAddressMapping

    if isinstance(fabric, FabricAddressMapping):
        mapping = fabric
    else:
        mapping = FabricAddressMapping(fabric.hmc, fabric.cubes)
    out: List[Trace] = []
    for stream in spec.streams:
        if stream.home_cube >= mapping.cubes:
            raise ValueError(
                f"stream {stream.mix} homed at cube {stream.home_cube}, but "
                f"the fabric has {mapping.cubes}"
            )
        for trace in mix(stream.mix, spec.refs_per_core, seed=stream.seed):
            if spec.placement == "home":
                addrs = mapping.relocate_home(trace.addrs, stream.home_cube)
                name = f"{trace.name}@q{stream.home_cube}"
            else:
                addrs = trace.addrs
                name = trace.name
            out.append(
                Trace(trace.gaps, addrs, trace.writes, name, dict(trace.meta))
            )
    return out
