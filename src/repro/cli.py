"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``      simulate one Table II mix under one scheme and print the summary
``profile``  run one cell under cProfile; report events/sec and hot callbacks
``figure``   regenerate one of the paper's figures (5-9) as a table/CSV
``campaign`` run a (mixes x schemes) grid sharded across worker processes
``serve``    long-running campaign service: HTTP/JSONL submissions, admission
             control, lease-based work stealing, graceful drain
``submit``   send a grid to a running ``serve`` node (and optionally wait)
``monitor``  tail a running campaign's telemetry spools from another terminal
``report``   markdown figure report, or an HTML dashboard from RunReports
``diff``     compare two RunReport artifacts (deltas + subsystem attribution)
``bench-trend`` flag benchmark regressions against BENCH_history.jsonl
``table``    print Table I (configuration) or Table II (workload mixes)
``schemes``  list the registered prefetching schemes
``trace``    generate a synthetic benchmark trace and print its statistics

Examples::

    python -m repro run HM1 --scheme camps-mod --refs 5000
    python -m repro run HM1 --scheme camps-mod --refs 3000 --trace out.json
    python -m repro run HM1 --refs 2000 --json
    python -m repro run HM1 --refs 3000 --report a.json
    python -m repro diff a.json b.json
    python -m repro report a.json b.json --out dash.html
    python -m repro profile HM1 --refs 3000
    python -m repro figure 5 --mixes HM1,LM1 --refs 3000 --csv fig5.csv
    python -m repro campaign --jobs 4 --refs 4000 --timeout 600 --retries 1
    python -m repro campaign --resume --jobs 4   # pick up where it stopped
    python -m repro campaign --report-dir reports --refs 2000
    python -m repro campaign --jobs 4 --watch --telemetry-port 9100
    python -m repro monitor .repro_campaign.jsonl      # from a 2nd terminal
    python -m repro serve --manifest svc.jsonl --port 9200 --jobs 4
    python -m repro submit --url http://127.0.0.1:9200 --mixes HM1 --wait
    python -m repro bench-trend --check
    python -m repro table 1
    python -m repro trace lbm --refs 10000
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.core.schemes import PAPER_SCHEMES, scheme_names
from repro.experiments.figures import (
    FIG5_SCHEMES,
    FIG6_SCHEMES,
    FIG8_SCHEMES,
    FIG9_SCHEMES,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.runner import ExperimentConfig, run_cell, run_matrix
from repro.experiments.tables import table1_text, table2_text
from repro.faults import LinkFaultConfig
from repro.hmc.config import HMCConfig
from repro.metrics.report import write_csv
from repro.workloads.mixes import mix as make_mix, mix_names
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import trace_stats

_FIGURES = {
    "5": (figure5, FIG5_SCHEMES),
    "6": (figure6, FIG6_SCHEMES),
    "7": (figure7, FIG5_SCHEMES),
    "8": (figure8, ["base"] + list(FIG8_SCHEMES)),
    "9": (figure9, FIG9_SCHEMES),
}


def _parse_mixes(raw: Optional[str]) -> List[str]:
    if not raw:
        return mix_names()
    names = [m.strip() for m in raw.split(",") if m.strip()]
    unknown = [m for m in names if m not in mix_names()]
    if unknown:
        raise SystemExit(f"unknown mixes: {', '.join(unknown)}")
    return names


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    hmc = HMCConfig()
    ber = getattr(args, "ber", 0.0) or 0.0
    drop = getattr(args, "drop", 0.0) or 0.0
    if ber or drop:
        hmc = hmc.with_overrides(
            faults=LinkFaultConfig(
                ber=ber, drop_prob=drop, seed=getattr(args, "fault_seed", 0)
            )
        )
    return ExperimentConfig(
        refs_per_core=args.refs,
        seed=args.seed,
        hmc=hmc,
        integrity=bool(getattr(args, "integrity", False)),
    )


def _result_json(result, cfg) -> str:
    """One-line machine-readable summary (CI harnesses scrape this)."""
    payload = {
        "mix": result.workload,
        "scheme": result.scheme,
        "refs_per_core": cfg.refs_per_core,
        "seed": cfg.seed,
        "cycles": result.cycles,
        "geomean_ipc": result.geomean_ipc,
        "core_ipc": result.core_ipc,
        "conflict_rate": result.conflict_rate,
        "row_conflicts": result.row_conflicts,
        "demand_accesses": result.demand_accesses,
        "buffer_hits": result.buffer_hits,
        "prefetches_issued": result.prefetches_issued,
        "row_accuracy": result.row_accuracy,
        "line_accuracy": result.line_accuracy,
        "mean_read_latency": result.mean_read_latency,
        "energy_pj": result.energy_pj,
        "link_utilization": result.link_utilization,
    }
    if "link_faults" in result.extra:
        payload["link_faults"] = result.extra["link_faults"]
    if "trace_summary" in result.extra:
        payload["trace_summary"] = result.extra["trace_summary"]
    return json.dumps(payload)


def _run_fabric(args: argparse.Namespace, cfg: ExperimentConfig) -> int:
    """``repro run --topology chain:4``: one mix replicated one stream per
    cube across a routed multi-cube fabric."""
    from repro.fabric import FabricConfig, FabricSystem, FabricSystemConfig
    from repro.workloads.multistream import MultiStreamSpec, build_stream_traces

    try:
        fabric = FabricConfig.from_spec(args.topology, hmc=cfg.hmc)
    except ValueError as exc:
        raise SystemExit(str(exc))
    report_path = getattr(args, "report", None)
    epoch = getattr(args, "epoch", None)
    if report_path and epoch is None:
        from repro.obs.timeseries import DEFAULT_EPOCH

        epoch = DEFAULT_EPOCH
    tracer = None
    if args.trace or args.log_json or report_path or epoch is not None:
        from pathlib import Path

        for raw in (args.trace, args.log_json, report_path):
            if raw and not Path(raw).resolve().parent.is_dir():
                raise SystemExit(
                    f"output directory does not exist: {Path(raw).resolve().parent}"
                )
        from repro.obs import Tracer

        tracer = Tracer()
    spec = MultiStreamSpec.per_cube(
        args.mix, fabric.cubes, cfg.refs_per_core, seed=cfg.seed
    )
    fsys = FabricSystem(
        build_stream_traces(spec, fabric),
        FabricSystemConfig(
            fabric=fabric, scheme=args.scheme, timeseries_epoch=epoch
        ),
        workload=args.mix,
        tracer=tracer,
    )
    result = fsys.run()
    fx = result.extra["fabric"]

    if args.json:
        payload = json.loads(_result_json(result, cfg))
        payload["topology"] = fabric.spec
        payload["fabric"] = {
            key: fx[key]
            for key in (
                "cubes",
                "mean_hops",
                "hop_histogram",
                "hop_flits",
                "fabric_link_utilization",
                "per_cube",
            )
        }
        print(json.dumps(payload))
    else:
        print(
            f"{args.mix} @ {fabric.spec} / {args.scheme} "
            f"({cfg.refs_per_core} refs/core x {fabric.cubes} stream(s), "
            f"seed {cfg.seed})"
        )
        print(f"  cycles              {result.cycles}")
        print(f"  geomean IPC         {result.geomean_ipc:.3f}")
        print(f"  conflict rate       {result.conflict_rate:.3f}")
        print(f"  prefetches issued   {result.prefetches_issued}")
        print(f"  prefetch accuracy   {result.row_accuracy:.1%} (rows) / "
              f"{result.line_accuracy:.1%} (lines)")
        print(f"  mean read latency   {result.mean_read_latency:.0f} cycles")
        print(f"  HMC energy          {result.energy_pj / 1e6:.1f} uJ")
        hist = " ".join(
            f"{h}:{n}" for h, n in sorted(fx["hop_histogram"].items())
        )
        print(f"  mean hops           {fx['mean_hops']:.2f}  ({hist})")
        print(f"  host link util      {result.link_utilization:.1%}")
        if fabric.cubes > 1:
            print(f"  fabric link util    {fx['fabric_link_utilization']:.1%}")
            rates = ", ".join(
                f"q{p['cube']}:{p['conflict_rate']:.3f}" for p in fx["per_cube"]
            )
            print(f"  per-cube conflicts  {rates}")

    if tracer is not None:
        from repro.obs import text_summary, write_chrome_trace, write_jsonl

        if args.trace:
            path = write_chrome_trace(tracer, args.trace)
            if not args.json:
                print(f"  wrote Chrome trace  {path} "
                      f"({len(tracer.events)} events; open in ui.perfetto.dev)")
        if args.log_json:
            path = write_jsonl(tracer, args.log_json)
            if not args.json:
                print(f"  wrote JSONL log     {path}")
        if report_path:
            from repro.obs import build_run_report

            path = build_run_report(
                fsys, result,
                mix=args.mix, topology=fabric.spec,
                refs_per_core=cfg.refs_per_core, seed=cfg.seed,
            ).save(report_path)
            if not args.json:
                print(f"  wrote run report    {path} (diff/render with "
                      f"`repro diff` / `repro report`)")
        if not args.json:
            print()
            print(text_summary(tracer))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    cfg = _experiment_config(args)
    if getattr(args, "topology", None):
        return _run_fabric(args, cfg)
    tracer = None
    system = None
    report_path = getattr(args, "report", None)
    epoch = getattr(args, "epoch", None)
    if report_path and epoch is None:
        from repro.obs.timeseries import DEFAULT_EPOCH

        epoch = DEFAULT_EPOCH
    if args.trace or args.log_json or report_path or epoch is not None:
        # Fail on bad output paths *before* simulating, not after.
        from pathlib import Path

        for raw in (args.trace, args.log_json, report_path):
            if raw and not Path(raw).resolve().parent.is_dir():
                raise SystemExit(
                    f"output directory does not exist: {Path(raw).resolve().parent}"
                )
        # Tracing/reporting needs a live System (the result cache only
        # stores summaries), so build the cell directly and bypass the cache.
        from repro.obs import Tracer
        from repro.system import System, SystemConfig

        tracer = Tracer()
        traces = make_mix(args.mix, cfg.refs_per_core, seed=cfg.seed, config=cfg.hmc)
        system = System(
            traces,
            SystemConfig(
                hmc=cfg.hmc,
                scheme=args.scheme,
                integrity=cfg.integrity,
                timeseries_epoch=epoch,
            ),
            workload=args.mix,
            tracer=tracer,
        )
        result = system.run()
    else:
        result = run_cell(args.mix, args.scheme, cfg)

    if args.json:
        print(_result_json(result, cfg))
    else:
        print(f"{args.mix} / {args.scheme} ({cfg.refs_per_core} refs/core, seed {cfg.seed})")
        print(f"  cycles              {result.cycles}")
        print(f"  geomean IPC         {result.geomean_ipc:.3f}")
        print(f"  per-core IPC        {', '.join(f'{i:.2f}' for i in result.core_ipc)}")
        print(f"  conflict rate       {result.conflict_rate:.3f}")
        print(f"  prefetches issued   {result.prefetches_issued}")
        print(f"  prefetch accuracy   {result.row_accuracy:.1%} (rows) / "
              f"{result.line_accuracy:.1%} (lines)")
        print(f"  mean read latency   {result.mean_read_latency:.0f} cycles")
        print(f"  HMC energy          {result.energy_pj / 1e6:.1f} uJ")
        if args.baseline and args.baseline != args.scheme and tracer is None:
            base = run_cell(args.mix, args.baseline, cfg)
            print(f"  speedup vs {args.baseline:<9} {result.speedup_vs(base):.3f}x")

    if tracer is not None:
        from repro.obs import text_summary, write_chrome_trace, write_jsonl

        if args.trace:
            path = write_chrome_trace(tracer, args.trace)
            if not args.json:
                print(f"  wrote Chrome trace  {path} "
                      f"({len(tracer.events)} events; open in ui.perfetto.dev)")
        if args.log_json:
            path = write_jsonl(tracer, args.log_json)
            if not args.json:
                print(f"  wrote JSONL log     {path}")
        if report_path:
            from repro.obs import build_run_report

            path = build_run_report(
                system, result,
                mix=args.mix, refs_per_core=cfg.refs_per_core, seed=cfg.seed,
            ).save(report_path)
            if not args.json:
                print(f"  wrote run report    {path} (diff/render with "
                      f"`repro diff` / `repro report`)")
        if not args.json:
            print()
            print(text_summary(tracer))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one simulation cell: engine throughput, per-subsystem
    breakdown, and hot callbacks."""
    import cProfile
    import pstats

    from repro.sim.profiling import (
        breakdown_table,
        profile_payload,
        subsystem_breakdown,
    )

    cfg = _experiment_config(args)
    traces = make_mix(args.mix, cfg.refs_per_core, seed=cfg.seed, config=cfg.hmc)
    from repro.system import System, SystemConfig

    system = System(
        traces, SystemConfig(hmc=cfg.hmc, scheme=args.scheme), workload=args.mix
    )
    profiler = cProfile.Profile()
    profiler.enable()
    result = system.run()
    profiler.disable()

    eng = system.engine
    breakdown = subsystem_breakdown(profiler)
    if args.json:
        payload = profile_payload(
            breakdown,
            cycles=result.cycles,
            events_fired=eng.events_fired,
            wall_seconds=eng.wall_seconds,
        )
        payload.update(
            mix=args.mix, scheme=args.scheme,
            refs_per_core=cfg.refs_per_core, seed=cfg.seed,
        )
        print(json.dumps(payload))
        if args.out:
            pstats.Stats(profiler).dump_stats(args.out)
        return 0
    print(f"{args.mix} / {args.scheme} ({cfg.refs_per_core} refs/core, seed {cfg.seed})")
    print(f"  simulated cycles    {result.cycles}")
    print(f"  events fired        {eng.events_fired}")
    print(f"  wall time           {eng.wall_seconds:.3f} s (engine loop)")
    print(f"  events/sec          {eng.events_per_sec:,.0f}")
    print()
    print("per-subsystem breakdown (profiled wall time):")
    print(breakdown_table(breakdown))
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort)
    print(f"top {args.top} callbacks by {args.sort} time:")
    stats.print_stats(r"repro", args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote profile data to {args.out} (inspect with snakeviz/pstats)")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    fig_fn, schemes = _FIGURES[args.number]
    mixes = _parse_mixes(args.mixes)
    cfg = _experiment_config(args)
    # Every figure's schemes are a subset of the fig-5 set; running the full
    # set keeps the cache warm across figure invocations.
    matrix = run_matrix(mixes, FIG5_SCHEMES, cfg, progress=not args.quiet)
    data = fig_fn(matrix)
    print(data.text())
    if args.chart:
        from repro.metrics.plot import summary_bars

        baseline = 1.0 if args.number in ("5", "9") else None
        print()
        print(
            summary_bars(
                data.summary, data.schemes, f"{data.figure} (summary)",
                baseline=baseline,
            )
        )
    if args.csv:
        path = write_csv(data.per_workload, data.schemes, args.csv, summary=data.summary)
        print(f"\nwrote {path}")
    return 0


def _parse_schemes(raw: Optional[str]) -> List[str]:
    if not raw:
        return list(FIG5_SCHEMES)
    names = [s.strip() for s in raw.split(",") if s.strip()]
    unknown = [s for s in names if s not in scheme_names()]
    if unknown:
        raise SystemExit(f"unknown schemes: {', '.join(unknown)}")
    return names


def cmd_campaign(args: argparse.Namespace) -> int:
    """Sharded grid run with manifest, timeouts, retry and resume."""
    from repro.campaign import (
        CampaignOptions,
        Manifest,
        fabric_grid_cells,
        grid_cells,
        matrix_digest,
        run_campaign,
    )
    from repro.experiments.runner import default_cache

    mixes = _parse_mixes(args.mixes)
    schemes = _parse_schemes(args.schemes)
    cfg = _experiment_config(args)
    topologies = [
        t.strip()
        for t in (getattr(args, "topology", None) or "").split(",")
        if t.strip()
    ]
    if topologies:
        try:
            cells = fabric_grid_cells(topologies, mixes, schemes, cfg)
        except ValueError as exc:
            raise SystemExit(str(exc))
    else:
        cells = grid_cells(mixes, schemes, cfg)
    if not args.quiet:
        shape = f"{len(mixes)} mixes x {len(schemes)} schemes"
        if topologies:
            shape = f"{len(topologies)} topologies x " + shape
        print(
            f"campaign: {len(cells)} cells ({shape}), "
            f"{args.jobs} worker(s), "
            f"{cfg.refs_per_core} refs/core, seed {cfg.seed}"
        )
    res = run_campaign(
        cells,
        CampaignOptions(
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            resume=args.resume,
            # the live board replaces the per-cell progress lines
            progress=not args.quiet and not args.watch,
            telemetry=args.telemetry,
            telemetry_port=args.telemetry_port,
            telemetry_interval=args.telemetry_interval,
            watch=args.watch,
        ),
        # per-cell RunReports invalidate nothing, but a cache hit skips the
        # simulation that would write them - so reported campaigns bypass
        # the cache to guarantee one artifact per requested cell
        cache=None if args.report_dir else default_cache(),
        manifest=Manifest(args.manifest),
        report_dir=args.report_dir,
    )
    st = res.stats
    print(
        f"campaign finished in {res.wall_seconds:.1f}s: "
        f"{st['ok']}/{st['total']} ok "
        f"({st['executed']} simulated, {st['cached']} cached, "
        f"{st['resumed']} resumed, {st['retried']} retries), "
        f"{st['failed']} failed"
    )
    print(f"manifest: {args.manifest}")
    if args.telemetry or args.watch or args.telemetry_port is not None:
        from repro.obs.telemetry import spool_dir_for

        print(
            f"telemetry spools: {spool_dir_for(args.manifest)}/ "
            f"(live-tail with `repro monitor {args.manifest}`)"
        )
    if args.report_dir:
        n = sum(1 for r in res.records.values() if r.report)
        print(f"run reports: {n} in {args.report_dir}/ "
              f"(render with `repro report --manifest {args.manifest}`)")
    for rec in res.failures:
        tail = (rec.error or "").strip().splitlines()
        print(f"  FAILED {rec.workload}/{rec.scheme}: {rec.status}"
              f" ({tail[-1] if tail else 'no detail'})")
    if res.failures:
        return 1
    # one-line determinism fingerprint: serial and sharded runs of the same
    # cells must print the same digest (see repro.campaign.matrix_digest)
    print(f"matrix digest: {matrix_digest(res.matrix())}")
    if not args.quiet:
        matrix = res.matrix()
        # fabric cells record topology-qualified workloads ("MX1@chain:4")
        rows = (
            [f"{w}@{t}" for t in topologies for w in mixes]
            if topologies
            else mixes
        )
        width = max(10, max(len(r) for r in rows) + 2)
        print()
        print(f"{'workload':<{width}}" + "".join(f"{s:>12}" for s in schemes))
        for w in rows:
            cells_txt = "".join(
                f"{matrix.get(w, s).geomean_ipc:>12.3f}" for s in schemes
            )
            print(f"{w:<{width}}{cells_txt}")
        print("(geomean IPC per cell)")
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Watch a running (or finished) campaign from outside its process.

    Tails the per-worker telemetry spools and the manifest; exits once the
    manifest reports every cell terminal (or immediately with ``--once``).
    """
    from repro.obs.watch import run_monitor

    try:
        run_monitor(
            args.target,
            interval=args.interval,
            once=args.once,
            as_json=args.json,
            stale_after=args.stale_after,
            max_seconds=args.max_seconds,
        )
    except FileNotFoundError as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived campaign service (see docs/API.md, Service mode).

    Accepts simulation jobs over HTTP and newline-delimited JSON on one
    port, multiplexes them onto a persistent worker pool, and records
    terminal cells in the manifest exactly like ``repro campaign`` —
    ``repro monitor <manifest>`` works unchanged against a serving node.
    SIGTERM drains: in-flight cells finish, the pending queue checkpoints
    to ``<manifest>.checkpoint.jsonl``, and a restart with ``--resume``
    (or a peer sharing the manifest) picks the work back up.
    """
    from repro.serve import ServeConfig, run_serve

    cfg = ServeConfig(
        manifest=args.manifest,
        jobs=args.jobs,
        host=args.host,
        port=args.port,
        resume=args.resume,
        retries=args.retries,
        timeout=args.timeout,
        quick_cap=args.quick_cap,
        bulk_cap=args.bulk_cap,
        lease_ticks=args.lease_ticks,
        tick_interval=args.tick_interval,
        worker_name=args.name,
        use_cache=not args.no_cache,
        exit_when_complete=args.exit_when_complete,
        spans=not args.no_spans,
        report_dir=args.report_dir,
    )
    return run_serve(cfg)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a grid to a running service; optionally wait for results."""
    from urllib.parse import urlparse

    from repro.serve import DrainingError, ServeClient, Shed

    parsed = urlparse(args.url if "//" in args.url else f"http://{args.url}")
    client = ServeClient(
        parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=args.timeout
    )
    mixes = _parse_mixes(args.mixes)
    schemes = _parse_schemes(args.schemes)
    grid: dict = {
        "mixes": mixes,
        "schemes": schemes,
        "refs": args.refs,
        "seed": args.seed,
    }
    if args.topology:
        grid["topologies"] = [
            t.strip() for t in args.topology.split(",") if t.strip()
        ]
    if getattr(args, "ber", 0.0):
        grid["ber"] = args.ber
    if getattr(args, "drop", 0.0):
        grid["drop"] = args.drop
    try:
        out = client.submit(
            grid=grid,
            lane=args.lane,
            deadline_s=args.deadline,
            traceparent=args.traceparent,
        )
    except Shed as exc:
        print(f"submit: shed by admission control; retry in "
              f"{exc.retry_after:g}s", file=sys.stderr)
        return 75  # EX_TEMPFAIL
    except DrainingError:
        print("submit: service is draining", file=sys.stderr)
        return 75
    print(f"job {out['job']}: {len(out['cells'])} cells "
          f"({out['lane']} lane) -> {args.url}")
    if out.get("trace"):
        print(f"  trace {out['trace']} (repro trace <manifest> "
              f"--trace-id {out['trace']})")
    if not args.wait:
        return 0
    info = client.wait(out["job"], timeout=args.wait_timeout)
    bad = [
        (cid, entry)
        for cid, entry in info.get("cells", {}).items()
        if entry.get("status") != "ok"
    ]
    print(f"job {out['job']}: {info['status']} "
          f"({info['done']}/{info['total']} cells, {len(bad)} failed)")
    if info.get("critical_path_text"):
        print(f"  critical path: {info['critical_path_text']}")
    if args.json:
        print(json.dumps(info))
    for cid, entry in bad:
        print(f"  FAILED {cid}: {entry.get('status')} "
              f"({str(entry.get('error', ''))[:120]})")
    return 1 if bad or info["status"] != "done" else 0


def cmd_bench_trend(args: argparse.Namespace) -> int:
    """Report benchmark trends from BENCH_history.jsonl; flag regressions
    of the newest run against the rolling median of its predecessors."""
    from repro.obs.trend import load_history, trend_report

    entries = load_history(args.history)
    if not entries:
        print(f"bench-trend: no history at {args.history}", file=sys.stderr)
        return 1 if args.check else 0
    trends = trend_report(entries, window=args.window, tolerance=args.tolerance)
    if args.json:
        print(json.dumps([
            {
                "bench": t.bench,
                "runs": t.runs,
                "latest": t.latest,
                "median": t.median,
                "ratio": t.ratio,
                "regressed": t.regressed,
                "git_sha": t.latest_sha,
            }
            for t in trends
        ]))
    else:
        print(f"bench history: {args.history} ({len(entries)} entries)")
        for t in trends:
            print(f"  {t.describe()}")
    regressed = [t for t in trends if t.regressed]
    if regressed and args.check:
        print(
            f"bench-trend: {len(regressed)} benchmark(s) regressed beyond "
            f"{args.tolerance:.0%} of the rolling median",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    if args.number == "1":
        print(table1_text())
    else:
        print(table2_text(measure_mpki=args.measure, refs=args.refs, seed=args.seed))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Compare two RunReport artifacts: metric deltas, subsystem
    attribution, and where the sampled series pull apart."""
    from repro.obs import RunReport, diff_reports, has_series

    ra, rb = RunReport.load(args.a), RunReport.load(args.b)
    # A one-sided series payload makes the series comparison meaningless
    # (and used to crash on null payloads): degrade to the metric diff with
    # a clear message and a nonzero exit so pipelines notice.
    missing = [
        path
        for path, report in ((args.a, ra), (args.b, rb))
        if not has_series(report)
    ]
    series_comparable = len(missing) != 1
    d = diff_reports(ra, rb)
    if args.json:
        print(json.dumps({
            "a": d.a_label,
            "b": d.b_label,
            "top_subsystem": d.top_subsystem(),
            "series_comparable": series_comparable,
            "subsystems": [
                {"name": n, "score": s, "metrics": k} for n, s, k in d.subsystems
            ],
            "metrics": [
                {"name": m.name, "a": m.a, "b": m.b, "delta": m.delta, "rel": m.rel}
                for m in d.metrics
            ],
        }))
    else:
        print(d.to_text(max_counters=args.top))
    if not series_comparable:
        print(
            f"diff: {missing[0]} has no series payload; series comparison "
            "skipped (re-run it with `repro run --report` or `repro "
            "campaign --report-dir` to sample series)",
            file=sys.stderr,
        )
        return 2
    return 0


def _report_html(args: argparse.Namespace) -> int:
    """HTML dashboard mode of ``repro report``."""
    from pathlib import Path

    from repro.obs import RunReport, render_html
    from repro.obs.html import load_manifest_rows

    reports = [RunReport.load(p) for p in args.inputs]
    rows = None
    if args.manifest:
        rows = load_manifest_rows(args.manifest)
        # cells executed with --report-dir point at their artifacts; fold
        # them in (bounded: each adds sparkline sections to the page)
        for row in rows:
            if len(reports) >= 8:
                break
            rpath = row.get("report")
            if rpath and Path(rpath).exists():
                reports.append(RunReport.load(rpath))
    if not reports and not rows:
        # nothing to render was supplied: simulate one sampled cell so
        # `repro report --out r.html` works out of the box
        from repro.obs import Tracer, build_run_report
        from repro.obs.timeseries import DEFAULT_EPOCH
        from repro.system import System, SystemConfig

        cfg = _experiment_config(args)
        mix_name = _parse_mixes(args.mixes)[0]
        if not args.quiet:
            print(f"no inputs; simulating {mix_name}/camps-mod "
                  f"({cfg.refs_per_core} refs/core)")
        tracer = Tracer()
        system = System(
            make_mix(mix_name, cfg.refs_per_core, seed=cfg.seed, config=cfg.hmc),
            SystemConfig(hmc=cfg.hmc, scheme="camps-mod",
                         timeseries_epoch=DEFAULT_EPOCH),
            workload=mix_name,
            tracer=tracer,
        )
        result = system.run()
        reports = [build_run_report(system, result, refs_per_core=cfg.refs_per_core,
                                    seed=cfg.seed)]
    out = Path(args.out or "report.html")
    html = render_html(reports, manifest_rows=rows)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html)
    print(f"wrote {out} ({len(html) / 1024:.0f} KiB, "
          f"{len(reports)} report(s); self-contained, opens offline)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.inputs or args.manifest or (args.out or "").endswith((".html", ".htm")):
        return _report_html(args)
    from repro.experiments.report import generate_report

    mixes = _parse_mixes(args.mixes)
    cfg = _experiment_config(args)
    matrix = run_matrix(mixes, FIG5_SCHEMES, cfg, progress=not args.quiet)
    note = (
        f"Scale: {cfg.refs_per_core} post-LLC references per core, "
        f"seed {cfg.seed}, mixes: {', '.join(mixes)}."
    )
    report = generate_report(matrix, scale_note=note)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """Fast end-to-end self-check: tiny simulations across every scheme,
    asserting the structural invariants a correct install must satisfy."""
    from repro.system import run_system
    from repro.workloads.synthetic import generate_trace

    traces = [generate_trace("gems", 400, seed=i, core_id=i) for i in range(2)]
    failures = []
    base_result = None
    for scheme in scheme_names():
        try:
            r = run_system(traces, scheme=scheme, workload="selftest")
            assert r.cycles > 0, "no cycles"
            assert all(i > 0 for i in r.core_ipc), "zero IPC"
            assert 0.0 <= r.row_accuracy <= 1.0, "accuracy out of range"
            if scheme == "base":
                assert r.row_conflicts == 0, "BASE must have zero conflicts"
                base_result = r
            if scheme == "none":
                assert r.prefetches_issued == 0, "none must not prefetch"
            # determinism
            r2 = run_system(traces, scheme=scheme, workload="selftest")
            assert r2.cycles == r.cycles, "nondeterministic"
            print(f"  {scheme:<10} ok  (cycles={r.cycles}, "
                  f"ipc={r.geomean_ipc:.3f})")
        except AssertionError as e:
            failures.append((scheme, str(e)))
            print(f"  {scheme:<10} FAILED: {e}")
    if base_result is not None:
        camps = run_system(traces, scheme="camps-mod", workload="selftest")
        print(f"  camps-mod speedup over base: "
              f"{camps.speedup_vs(base_result):.3f}x")
    if failures:
        print(f"selftest FAILED: {len(failures)} scheme(s)")
        return 1
    print("selftest passed")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import Sweep

    values = []
    for raw in args.values.split(","):
        raw = raw.strip()
        try:
            values.append(int(raw))
        except ValueError:
            try:
                values.append(float(raw))
            except ValueError:
                values.append(raw)
    sweep = Sweep(args.knob, values)
    result = sweep.run(
        args.mix,
        scheme=args.scheme,
        refs_per_core=args.refs,
        seed=args.seed,
        baseline_scheme=args.baseline or None,
    )
    print(result.text())
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    print("registered prefetching schemes:")
    for name in scheme_names():
        marker = "*" if name in PAPER_SCHEMES else " "
        print(f"  {marker} {name}")
    print("(* = evaluated in the paper's figures)")
    return 0


def _trace_manifest(args: argparse.Namespace) -> int:
    """Span-timeline mode of ``repro trace``: read service spans out of a
    campaign manifest, print per-trace critical-path attribution, and
    optionally merge them with simulator Chrome traces into one timeline.
    """
    from repro.obs.spans import (
        attribution,
        critical_path_text,
        merge_chrome,
        read_spans,
        spans_to_chrome,
    )

    spans = read_spans(args.benchmark, trace_id=args.trace_id)
    if args.cell:
        spans = [s for s in spans if s.cell_id == args.cell]
    if not spans:
        where = f" for trace {args.trace_id}" if args.trace_id else ""
        print(f"trace: no spans in {args.benchmark}{where}", file=sys.stderr)
        return 1
    by_trace: dict = {}
    for span in spans:
        stages = by_trace.setdefault(span.trace_id, {})
        stages[span.name] = stages.get(span.name, 0.0) + span.dur
    workers = sorted({s.worker for s in spans if s.worker})
    print(
        f"{args.benchmark}: {len(spans)} spans, {len(by_trace)} traces, "
        f"{len(workers)} workers ({', '.join(workers)})"
    )
    for tid, stages in sorted(by_trace.items()):
        path = critical_path_text(attribution(stages))
        print(f"  {tid}  {path or '(instant spans only)'}")
    if args.out:
        sims = []
        for sim_path in args.sim or []:
            try:
                with open(sim_path) as fh:
                    sims.append(json.load(fh))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"trace: skipping sim trace {sim_path}: {exc}",
                      file=sys.stderr)
        merged = merge_chrome(spans_to_chrome(spans), sims)
        with open(args.out, "w") as fh:
            json.dump(merged, fh)
        print(f"  wrote {args.out} ({len(merged['traceEvents'])} events; "
              f"open in ui.perfetto.dev)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.benchmark not in PROFILES and os.path.exists(args.benchmark):
        return _trace_manifest(args)
    if args.benchmark not in PROFILES:
        raise SystemExit(
            f"unknown benchmark {args.benchmark!r} (and no such manifest "
            f"file); available: {', '.join(sorted(PROFILES))}"
        )
    trace = generate_trace(args.benchmark, args.refs, seed=args.seed)
    stats = trace_stats(trace)
    prof = PROFILES[args.benchmark]
    print(f"{args.benchmark}: {args.refs} references, seed {args.seed}")
    print(f"  class               {prof.memory_intensity} (target MPKI {prof.mpki})")
    for key, fmt in [
        ("mpki", "{:.1f}"),
        ("write_fraction", "{:.1%}"),
        ("footprint_bytes", "{:,.0f}"),
        ("distinct_rows", "{:,.0f}"),
        ("lines_per_row", "{:.1f}"),
        ("row_switch_rate", "{:.2f}"),
    ]:
        print(f"  {key:<19} {fmt.format(stats[key])}")
    if args.out:
        trace.save(args.out)
        print(f"  saved to {args.out}")
    return 0


def _add_robustness_args(parser: argparse.ArgumentParser) -> None:
    """Fault-injection and integrity flags shared by run/campaign."""
    parser.add_argument(
        "--ber", type=float, default=0.0, metavar="P",
        help="link bit-error rate (e.g. 1e-6); enables fault injection",
    )
    parser.add_argument(
        "--drop", type=float, default=0.0, metavar="P",
        help="link packet-drop probability; enables fault injection",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, dest="fault_seed",
        help="base seed for the fault-injection RNG streams",
    )
    parser.add_argument(
        "--integrity", action="store_true",
        help="enable the integrity layer (watchdog, invariants, crash dumps)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAMPS (ICPP 2018) reproduction - simulate, regenerate figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one mix under one scheme")
    p_run.add_argument("mix", choices=mix_names())
    p_run.add_argument("--scheme", default="camps-mod", choices=scheme_names())
    p_run.add_argument("--baseline", default="base", choices=scheme_names())
    p_run.add_argument("--refs", type=int, default=4000)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--trace", metavar="PATH",
                       help="write a Chrome trace-event JSON (ui.perfetto.dev)")
    p_run.add_argument("--log-json", metavar="PATH",
                       help="write every trace event as one JSON object per line")
    p_run.add_argument("--json", action="store_true",
                       help="print a one-line machine-readable JSON summary")
    p_run.add_argument("--report", metavar="PATH",
                       help="write a RunReport artifact (counters + time "
                       "series; input to `repro diff` / `repro report`)")
    p_run.add_argument("--epoch", type=int, metavar="N",
                       help="time-series sampling period in cycles "
                       "(default 1024 when --report is given)")
    p_run.add_argument("--topology", metavar="SPEC",
                       help="run a multi-cube fabric instead of one cube: "
                       "'chain:4', 'ring:2', 'star:8' (one independent "
                       "stream of the mix per cube)")
    _add_robustness_args(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_prof = sub.add_parser(
        "profile", help="run one cell under cProfile; report hot callbacks"
    )
    p_prof.add_argument("mix", choices=mix_names())
    p_prof.add_argument("--scheme", default="camps-mod", choices=scheme_names())
    p_prof.add_argument("--refs", type=int, default=4000)
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.add_argument("--top", type=int, default=15,
                        help="number of hot functions to print")
    p_prof.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumtime", "ncalls"],
                        help="pstats sort key")
    p_prof.add_argument("--out", help="also dump raw pstats data to this file")
    p_prof.add_argument(
        "--json", action="store_true",
        help="print a machine-readable summary (throughput + per-subsystem "
        "slices; the format bench_hotpath.py embeds in BENCH_hotpath.json)",
    )
    p_prof.set_defaults(fn=cmd_profile)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=sorted(_FIGURES))
    p_fig.add_argument("--mixes", help="comma-separated subset (default: all 12)")
    p_fig.add_argument("--refs", type=int, default=4000)
    p_fig.add_argument("--seed", type=int, default=1)
    p_fig.add_argument("--csv", help="also write the table to this CSV path")
    p_fig.add_argument("--chart", action="store_true",
                       help="also render a terminal bar chart of the summary")
    p_fig.add_argument("--quiet", action="store_true")
    p_fig.set_defaults(fn=cmd_figure)

    p_camp = sub.add_parser(
        "campaign",
        help="run a (mixes x schemes) grid sharded across worker processes",
    )
    p_camp.add_argument("--mixes", help="comma-separated subset (default: all 12)")
    p_camp.add_argument(
        "--schemes",
        help="comma-separated schemes (default: the 5 paper schemes)",
    )
    p_camp.add_argument("--refs", type=int, default=4000)
    p_camp.add_argument("--seed", type=int, default=1)
    p_camp.add_argument(
        "--jobs", type=int, default=max(1, os.cpu_count() or 1),
        help="worker processes (default: CPU count)",
    )
    p_camp.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds (needs --jobs >= 2)",
    )
    p_camp.add_argument(
        "--retries", type=int, default=0,
        help="retry crashed/raising cells this many times",
    )
    p_camp.add_argument(
        "--manifest", default=".repro_campaign.jsonl",
        help="JSONL progress log (one record per finished cell)",
    )
    p_camp.add_argument(
        "--resume", action="store_true",
        help="skip cells the manifest already records as ok",
    )
    p_camp.add_argument(
        "--report-dir", dest="report_dir", metavar="DIR",
        help="write one RunReport artifact per executed cell into DIR "
        "(manifest records point at them; disables the result cache)",
    )
    p_camp.add_argument(
        "--watch", action="store_true",
        help="live terminal status board (per-worker rows, ETA, stall "
        "highlighting); replaces the per-cell progress lines",
    )
    p_camp.add_argument(
        "--telemetry", action="store_true",
        help="write per-worker heartbeat spools next to the manifest "
        "(implied by --watch / --telemetry-port; tail with `repro monitor`)",
    )
    p_camp.add_argument(
        "--telemetry-port", dest="telemetry_port", type=int, metavar="N",
        help="serve live /snapshot JSON and /metrics Prometheus text on "
        "this port (0 picks a free port)",
    )
    p_camp.add_argument(
        "--telemetry-interval", dest="telemetry_interval", type=float,
        default=0.5, metavar="SECONDS",
        help="seconds between worker heartbeats (default 0.5)",
    )
    p_camp.add_argument(
        "--topology", metavar="SPECS",
        help="comma-separated fabric topologies ('chain:2,chain:4,ring:4'): "
        "runs the (topology x mix x scheme) scenario grid on multi-cube "
        "fabrics instead of the single-cube grid",
    )
    _add_robustness_args(p_camp)
    p_camp.add_argument("--quiet", action="store_true")
    p_camp.set_defaults(fn=cmd_campaign)

    p_mon = sub.add_parser(
        "monitor",
        help="tail a campaign's telemetry spools from another terminal/host",
    )
    p_mon.add_argument(
        "target",
        help="campaign manifest path, its .telemetry spool directory, or a "
        "directory containing exactly one of either",
    )
    p_mon.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds (default 1)")
    p_mon.add_argument("--once", action="store_true",
                       help="render one snapshot and exit")
    p_mon.add_argument("--json", action="store_true",
                       help="print the final snapshot as JSON")
    p_mon.add_argument("--stale-after", dest="stale_after", type=float,
                       default=5.0,
                       help="flag a worker stalled after this many seconds "
                       "without a heartbeat (default 5)")
    p_mon.add_argument("--max-seconds", dest="max_seconds", type=float,
                       default=None,
                       help="stop monitoring after this long even if the "
                       "campaign is still running")
    p_mon.set_defaults(fn=cmd_monitor)

    p_srv = sub.add_parser(
        "serve",
        help="run the campaign service: submit jobs over HTTP/JSONL, "
        "work-stealing recovery, graceful drain",
    )
    p_srv.add_argument(
        "--manifest", default=".repro_serve.jsonl",
        help="shared manifest/work-queue file (peers attach to the same "
        "path to steal work)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=9200,
        help="listen port (0 picks a free port; default 9200)",
    )
    p_srv.add_argument(
        "--jobs", type=int, default=max(1, os.cpu_count() or 1),
        help="worker processes (default: CPU count)",
    )
    p_srv.add_argument(
        "--resume", action="store_true",
        help="attach to an existing manifest (and its drain checkpoint) "
        "instead of starting fresh",
    )
    p_srv.add_argument("--retries", type=int, default=1,
                       help="retries for raising cells (crashes always requeue)")
    p_srv.add_argument("--timeout", type=float, default=None,
                       help="per-attempt wall-clock budget in seconds")
    p_srv.add_argument("--quick-cap", dest="quick_cap", type=int, default=64,
                       help="max queued cells in the quick lane (default 64)")
    p_srv.add_argument("--bulk-cap", dest="bulk_cap", type=int, default=256,
                       help="max queued cells in the bulk lane (default 256)")
    p_srv.add_argument("--lease-ticks", dest="lease_ticks", type=int,
                       default=24,
                       help="logical-clock ticks before an orphaned claim "
                       "is stealable (default 24)")
    p_srv.add_argument("--tick-interval", dest="tick_interval", type=float,
                       default=0.25,
                       help="seconds between scheduler ticks (default 0.25)")
    p_srv.add_argument("--name", default=None,
                       help="work-queue worker name (default s<pid>)")
    p_srv.add_argument("--no-cache", dest="no_cache", action="store_true",
                       help="bypass the shared ResultCache")
    p_srv.add_argument(
        "--exit-when-complete", dest="exit_when_complete",
        action="store_true",
        help="fleet mode: exit once every claimed cell in the manifest is "
        "terminal (used by headless peers)",
    )
    p_srv.add_argument(
        "--no-spans", dest="no_spans", action="store_true",
        help="disable causal span tracing (no span records in the manifest)",
    )
    p_srv.add_argument(
        "--report-dir", dest="report_dir", default=None, metavar="DIR",
        help="write per-cell RunReport artifacts here and serve them via "
        "GET /jobs/<id>/report and /jobs/<id>/dash.html",
    )
    p_srv.set_defaults(fn=cmd_serve)

    p_sub = sub.add_parser(
        "submit",
        help="submit a (mixes x schemes) grid to a running `repro serve`",
    )
    p_sub.add_argument("--url", default="http://127.0.0.1:9200",
                       help="service address (default http://127.0.0.1:9200)")
    p_sub.add_argument("--mixes", help="comma-separated subset (default: all)")
    p_sub.add_argument("--schemes",
                       help="comma-separated schemes (default: paper schemes)")
    p_sub.add_argument("--refs", type=int, default=4000)
    p_sub.add_argument("--seed", type=int, default=1)
    p_sub.add_argument("--topology", metavar="SPECS",
                       help="comma-separated fabric topologies for a "
                       "multi-cube scenario grid")
    p_sub.add_argument("--ber", type=float, default=0.0)
    p_sub.add_argument("--drop", type=float, default=0.0)
    p_sub.add_argument("--lane", choices=["quick", "bulk"], default=None,
                       help="priority lane override (default: inferred)")
    p_sub.add_argument("--deadline", type=float, default=None,
                       help="seconds after which still-queued cells of this "
                       "job are abandoned")
    p_sub.add_argument("--traceparent", default=None,
                       help="W3C traceparent (or bare hex trace id) to join "
                       "this submission to an existing trace")
    p_sub.add_argument("--wait", action="store_true",
                       help="block until the job is terminal; exit non-zero "
                       "on any failed cell")
    p_sub.add_argument("--wait-timeout", dest="wait_timeout", type=float,
                       default=600.0)
    p_sub.add_argument("--timeout", type=float, default=30.0,
                       help="per-request HTTP timeout")
    p_sub.add_argument("--json", action="store_true",
                       help="print the final job state as JSON")
    p_sub.set_defaults(fn=cmd_submit)

    p_bt = sub.add_parser(
        "bench-trend",
        help="flag benchmark regressions against the rolling median of "
        "BENCH_history.jsonl",
    )
    p_bt.add_argument("--history", default="BENCH_history.jsonl",
                      help="history file benchmarks append to")
    p_bt.add_argument("--window", type=int, default=8,
                      help="prior runs feeding the rolling median (default 8)")
    p_bt.add_argument("--tolerance", type=float, default=0.25,
                      help="regression threshold as a fraction over the "
                      "median (default 0.25)")
    p_bt.add_argument("--check", action="store_true",
                      help="exit nonzero when any benchmark regressed "
                      "(or the history is missing)")
    p_bt.add_argument("--json", action="store_true",
                      help="machine-readable per-benchmark verdicts")
    p_bt.set_defaults(fn=cmd_bench_trend)

    p_tab = sub.add_parser("table", help="print Table I or II")
    p_tab.add_argument("number", choices=["1", "2"])
    p_tab.add_argument("--measure", action="store_true",
                       help="Table II: measure constituent MPKI")
    p_tab.add_argument("--refs", type=int, default=2000)
    p_tab.add_argument("--seed", type=int, default=1)
    p_tab.set_defaults(fn=cmd_table)

    p_sw = sub.add_parser("sweep", help="sweep one configuration knob")
    p_sw.add_argument("knob", help="HMCConfig field, 'timings.<field>' or "
                      "'scheme:<CampsParams field>'")
    p_sw.add_argument("values", help="comma-separated values, e.g. 4,8,16")
    p_sw.add_argument("--mix", default="HM1", choices=mix_names())
    p_sw.add_argument("--scheme", default="camps-mod", choices=scheme_names())
    p_sw.add_argument("--baseline", default="base")
    p_sw.add_argument("--refs", type=int, default=2500)
    p_sw.add_argument("--seed", type=int, default=1)
    p_sw.set_defaults(fn=cmd_sweep)

    p_rep = sub.add_parser(
        "report",
        help="measured-vs-paper markdown report, or (with RunReport inputs, "
        "--manifest, or an .html --out) a self-contained HTML dashboard",
    )
    p_rep.add_argument(
        "inputs", nargs="*", metavar="REPORT.json",
        help="RunReport artifacts (from `run --report` / `campaign "
        "--report-dir`) to render as an HTML dashboard",
    )
    p_rep.add_argument("--mixes", help="comma-separated subset (default: all 12)")
    p_rep.add_argument("--refs", type=int, default=4000)
    p_rep.add_argument("--seed", type=int, default=1)
    p_rep.add_argument("--out", help="write the report to this file "
                       "(*.html selects the dashboard mode)")
    p_rep.add_argument("--manifest", metavar="PATH",
                       help="campaign manifest: adds the scheme-comparison "
                       "table and folds in per-cell reports")
    p_rep.add_argument("--quiet", action="store_true")
    p_rep.set_defaults(fn=cmd_report)

    p_diff = sub.add_parser(
        "diff", help="compare two RunReport artifacts (deltas + attribution)"
    )
    p_diff.add_argument("a", help="baseline RunReport JSON")
    p_diff.add_argument("b", help="comparison RunReport JSON")
    p_diff.add_argument("--top", type=int, default=10,
                        help="rows per section in the text output")
    p_diff.add_argument("--json", action="store_true",
                        help="machine-readable summary")
    p_diff.set_defaults(fn=cmd_diff)

    p_st = sub.add_parser("selftest", help="fast end-to-end install check")
    p_st.set_defaults(fn=cmd_selftest)

    p_s = sub.add_parser("schemes", help="list prefetching schemes")
    p_s.set_defaults(fn=cmd_schemes)

    p_tr = sub.add_parser(
        "trace",
        help="inspect a synthetic trace (benchmark name) or a service "
        "span timeline (manifest path)",
    )
    p_tr.add_argument(
        "benchmark",
        help="benchmark name (synthetic-trace mode) or a campaign manifest "
        "path (span-timeline mode)",
    )
    p_tr.add_argument("--refs", type=int, default=10_000)
    p_tr.add_argument("--seed", type=int, default=1)
    p_tr.add_argument(
        "--out",
        help="save the synthetic trace (.npz) or, in span-timeline mode, "
        "the merged Chrome trace-event JSON",
    )
    p_tr.add_argument(
        "--trace-id", dest="trace_id", default=None,
        help="span-timeline mode: only this trace id",
    )
    p_tr.add_argument(
        "--cell", default=None,
        help="span-timeline mode: only spans of this cell id",
    )
    p_tr.add_argument(
        "--sim", action="append", metavar="PATH",
        help="span-timeline mode: merge a simulator Chrome trace "
        "(repro run --trace) into the same timeline; repeatable",
    )
    p_tr.set_defaults(fn=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro table 1 | head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
